"""Cost-based bitvector filter selection (paper Section 6.3).

Creating and checking bitvector filters is not free: a filter that
eliminates almost nothing costs ``Cf`` per probe tuple and saves almost
no probe work.  The paper derives a profile-calibrated elimination
threshold and deploys ``lambda_thresh = 5%``: a hash join only creates
its bitvector when the filter is estimated to eliminate at least that
fraction of probe-side tuples (estimated "the same way as the existing
semi-join operator").

``apply_cost_based_filters`` sets the ``creates_bitvector`` flag on
every join of a plan; the caller then runs push-down once.
"""

from __future__ import annotations

from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.cost.cout import EstimatedCardModel
from repro.plan.clone import clone_plan
from repro.plan.nodes import HashJoinNode, PlanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.stats.estimator import CardinalityEstimator


def apply_cost_based_filters(
    plan: PlanNode,
    estimator: CardinalityEstimator,
    lambda_thresh: float = DEFAULT_LAMBDA_THRESH,
) -> PlanNode:
    """Disable bitvector creation for joins below the threshold.

    The elimination fraction of a join's filter is estimated with
    distinct-value containment between the build side's (reduced) keys
    and the probe side's raw keys — the anti-semi-join selectivity.
    Returns the same plan object with flags updated (no push-down yet).
    """
    copy, mapping = clone_plan(plan)
    push_down_bitvectors(copy)
    model = EstimatedCardModel(estimator)

    clone_by_original: dict[int, HashJoinNode] = {}
    for original in plan.walk():
        if isinstance(original, HashJoinNode):
            clone = mapping[original.node_id]
            assert isinstance(clone, HashJoinNode)
            clone_by_original[original.node_id] = clone

    for original in plan.walk():
        if not isinstance(original, HashJoinNode):
            continue
        clone = clone_by_original[original.node_id]
        elimination = _estimated_elimination(clone, model, estimator)
        original.creates_bitvector = elimination >= lambda_thresh
    return plan


def _estimated_elimination(
    join: HashJoinNode,
    model: EstimatedCardModel,
    estimator: CardinalityEstimator,
) -> float:
    """Estimated fraction of probe tuples the join's filter eliminates."""
    build_rows = model.rows_out(join.build)
    survival = 1.0
    for (build_alias, build_col), (probe_alias, probe_col) in zip(
        join.build_keys, join.probe_keys
    ):
        ndv_build = min(
            estimator.column_distinct(build_alias, build_col),
            max(build_rows, 1.0),
        )
        ndv_probe = estimator.column_distinct(probe_alias, probe_col)
        survival *= min(1.0, ndv_build / max(ndv_probe, 1.0))
    return 1.0 - survival
