"""Linear candidate plan sets from the paper's analysis.

* **Star** (Theorem 4.1): the minimal-``Cout`` right-deep plan is among
  ``T(R0, R1, ..., Rn)`` plus the n plans
  ``T(Rk, R0, R1, ..., Rk-1, Rk+1, ..., Rn)`` — n+1 candidates.
* **Branch/chain** (Theorem 5.3): ``T(Rn, ..., R0)`` plus, for each k,
  ``T(Rk, Rk+1, ..., Rn, Rk-1, ..., R0)`` — "start somewhere, ride the
  chain outward to the tip, then come back toward the fact".
* **Snowflake** (Theorem 5.1): the fact-first plan (branches appended
  in partial order) plus, for each branch and each starting position in
  it, a branch-led plan.

Dimension permutations within the equal-cost families are fixed to a
deterministic order — the theorems prove any permutation has the same
``Cout`` under no-false-positive filters, which the property tests
verify directly.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import OptimizerError
from repro.query.joingraph import JoinGraph


def star_candidate_orders(graph: JoinGraph, fact: str) -> Iterator[list[str]]:
    """The n+1 candidate orders of Theorem 4.1."""
    dimensions = sorted(set(graph.aliases) - {fact})
    yield [fact] + dimensions
    for leading in dimensions:
        rest = [d for d in dimensions if d != leading]
        yield [leading, fact] + rest


def branch_candidate_orders(chain: list[str]) -> Iterator[list[str]]:
    """The n+1 candidate orders of Theorem 5.3.

    ``chain`` is ordered from the fact side outward:
    ``chain[0] = R0`` (joins the fact / is the fact of the branch
    subproblem) ... ``chain[-1] = Rn`` (the tip).
    """
    tip_first = list(reversed(chain))
    yield tip_first
    for start in range(len(chain) - 1):
        outward = chain[start:]
        inward = list(reversed(chain[:start]))
        yield outward + inward


def snowflake_candidate_orders(graph: JoinGraph, fact: str) -> Iterator[list[str]]:
    """The n+1 candidate orders of Theorem 5.1.

    Requires the graph to be a snowflake around ``fact`` (chains of key
    joins); raises :class:`OptimizerError` otherwise.
    """
    if not graph.is_snowflake(fact):
        raise OptimizerError(f"graph is not a snowflake around {fact!r}")
    components = graph.branch_components(fact)
    chains = [graph.chain_order(fact, component) for component in components]
    chains.sort(key=lambda chain: chain[0])  # deterministic

    def other_chains_flat(skip_index: int) -> list[str]:
        flat: list[str] = []
        for index, chain in enumerate(chains):
            if index != skip_index:
                flat.extend(chain)  # root -> tip is partially ordered
        return flat

    # Case 1: fact is the right-most leaf.
    yield [fact] + other_chains_flat(skip_index=-1)

    # Case 2: a branch leads.  For branch i of length ni there are ni
    # candidates (one per starting relation), mirroring Theorem 5.3.
    for index, chain in enumerate(chains):
        for start in range(len(chain)):
            outward = chain[start:]
            inward = list(reversed(chain[:start]))
            yield outward + inward + [fact] + other_chains_flat(index)


def leading_order(
    component: set[str],
    start: str,
    roots: list[str],
    neighbors: "callable",
) -> list[str]:
    """Generalized Theorem 5.3 order for an arbitrary (tree) branch.

    From ``start``, first take the subtree pointing *away* from the
    fact (DFS), then walk back along the path toward the fact's
    neighbor (a *root*), emitting each node and its side subtrees.  For
    chain branches this reproduces the theorem's candidates exactly.
    Every prefix is connected, so the order never introduces a cross
    product.

    ``neighbors`` is a callable ``node -> iterable of neighbor nodes``
    so the same logic serves alias-level and unit-level graphs.
    """
    if start not in component:
        raise OptimizerError(f"{start!r} is not in the branch component")
    if not roots:
        raise OptimizerError("component does not touch the fact table")

    def component_neighbors(node: str) -> list[str]:
        return sorted(n for n in neighbors(node) if n in component)

    # Path from start back to a root (BFS parents toward any root).
    parents: dict[str, str | None] = {start: None}
    frontier = [start]
    reached_root = start if start in roots else None
    while frontier and reached_root is None:
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in component_neighbors(node):
                if neighbor not in parents:
                    parents[neighbor] = node
                    if neighbor in roots:
                        reached_root = neighbor
                        break
                    next_frontier.append(neighbor)
            if reached_root is not None:
                break
        frontier = next_frontier
    if reached_root is None:
        raise OptimizerError("branch component is not connected to a root")
    path: list[str] = [reached_root]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])  # type: ignore[arg-type]
    path.reverse()  # start ... root

    order: list[str] = []
    emitted: set[str] = set()
    path_set = set(path)

    def emit_subtree(node: str) -> None:
        """DFS away from the path."""
        order.append(node)
        emitted.add(node)
        for neighbor in component_neighbors(node):
            if neighbor not in emitted and neighbor not in path_set:
                emit_subtree(neighbor)

    for node in path:
        emit_subtree(node)
    # Any remaining component members hang off subtrees that were
    # blocked by path membership; sweep until fixpoint.
    remaining = [n for n in sorted(component) if n not in emitted]
    while remaining:
        progressed = False
        for node in remaining:
            if set(neighbors(node)) & emitted:
                emit_subtree(node)
                progressed = True
        remaining = [n for n in sorted(component) if n not in emitted]
        if remaining and not progressed:
            raise OptimizerError("branch component is disconnected")
    return order


def branch_leading_order(
    graph: JoinGraph, fact: str, component: set[str], start: str
) -> list[str]:
    """Alias-level :func:`leading_order` for a branch of ``graph``."""
    roots = graph.branch_roots(fact, component)
    return leading_order(component, start, roots, graph.neighbors)
