"""Algorithm 3: join ordering for arbitrary decision-support graphs.

Alternates two stages until the whole graph is one unit:

1. **ExtractSnowflake** — among unoptimized fact units, take the one
   with the smallest cardinality and expand it with every unit
   reachable through key joins (its dimension closure).  If only one
   unoptimized fact remains, the whole remaining graph is the
   snowflake (non-key branches become Algorithm 2's group P0).
2. **OptimizeSnowflake** — Algorithm 2 on the extracted subgraph; the
   result is collapsed into a single *optimized* composite unit that
   later iterations treat as a relation.
"""

from __future__ import annotations

from repro.cost.cout import EstimatedCardModel
from repro.errors import OptimizerError
from repro.optimizer.snowflake import optimize_snowflake
from repro.optimizer.units import UnitGraph
from repro.plan.clone import clone_plan
from repro.plan.nodes import PlanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator


def optimize_join_graph(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    bitvector_aware: bool = True,
    context=None,
) -> PlanNode:
    """Produce a join order for an arbitrary connected join graph.

    ``bitvector_aware=False`` runs the identical extraction loop with
    blind snowflake optimization — the baseline configuration (the host
    optimizer's snowflake heuristics without bitvector awareness).

    ``context`` arms a deadline/cancel check per extraction round (and,
    inside :func:`~repro.optimizer.snowflake.optimize_snowflake`, per
    enumerated candidate), so plan search on a pathological graph stays
    abortable.
    """
    if not graph.aliases:
        raise OptimizerError("query has no relations")
    if not graph.is_connected():
        raise OptimizerError("join graph is disconnected (cross product)")

    ugraph = UnitGraph(graph, estimator)
    while True:
        if context is not None:
            context.check()
        unit_ids = set(ugraph.unit_ids)
        if len(unit_ids) == 1:
            only = next(iter(unit_ids))
            return ugraph.unit_plan(only)

        fact_id, scope = _extract_snowflake(ugraph, unit_ids)
        plan = optimize_snowflake(
            ugraph, fact_id, scope, bitvector_aware, context=context
        )
        if scope == unit_ids:
            return plan
        rows = _estimate_plan_rows(plan, estimator)
        ugraph.collapse(scope, plan, rows, fact_id)


def _extract_snowflake(
    ugraph: UnitGraph, unit_ids: set[str]
) -> tuple[str, set[str]]:
    """Pick the next fact unit and its snowflake scope."""
    facts = [uid for uid in sorted(unit_ids) if ugraph.is_fact_unit(uid)]
    unoptimized = [uid for uid in facts if not ugraph.unit(uid).optimized]

    if len(unoptimized) >= 2:
        fact_id = min(unoptimized, key=lambda uid: (ugraph.unit(uid).rows, uid))
        scope = ugraph.expand_snowflake(fact_id, unit_ids)
        if len(scope) > 1:
            return fact_id, scope
        # Nothing hangs off this fact via key joins; optimizing it alone
        # would not shrink the graph — take the whole graph instead.
        return fact_id, set(unit_ids)
    if len(unoptimized) == 1:
        return unoptimized[0], set(unit_ids)
    # No unoptimized fact remains (everything collapsed or cyclic key
    # joins): anchor on the smallest unit and finish in one pass.
    fact_id = min(unit_ids, key=lambda uid: (ugraph.unit(uid).rows, uid))
    return fact_id, set(unit_ids)


def _estimate_plan_rows(plan: PlanNode, estimator: CardinalityEstimator) -> float:
    """Estimated output cardinality of a subplan (bitvector-aware)."""
    copy, _ = clone_plan(plan)
    pushed = push_down_bitvectors(copy)
    model = EstimatedCardModel(estimator)
    return model.rows_out(pushed)
