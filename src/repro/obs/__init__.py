"""Query-lifecycle observability: structured tracing and telemetry.

Two complementary instruments, both strictly opt-in:

* :class:`~repro.obs.trace.Tracer` — hierarchical wall-clock spans
  recorded into per-thread ring buffers, exportable as a Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto) and consumed by
  :meth:`repro.service.QueryService.explain_analyze` for per-operator
  actual-vs-estimated plan annotations.
* :class:`~repro.obs.telemetry.ServiceTelemetry` — a registry of
  log-bucketed latency/row histograms (p50/p95/p99 estimates),
  mergeable like :class:`~repro.engine.metrics.ExecutionMetrics`,
  surfaced through :meth:`repro.service.QueryService.stats` and
  :meth:`repro.service.QueryService.telemetry_snapshot`.

The disarmed discipline matches :mod:`repro.testing.faults` and
:class:`repro.engine.context.ExecutionContext`: with no tracer attached
every instrumented site costs one attribute load and a ``None`` test,
and results are byte-identical with tracing on or off (gated by
``bench/trace_overhead.py`` → ``BENCH_trace_overhead.json``).
"""

from repro.obs.telemetry import LogHistogram, ServiceTelemetry
from repro.obs.trace import Span, Tracer

__all__ = [
    "LogHistogram",
    "ServiceTelemetry",
    "Span",
    "Tracer",
]
