"""Low-overhead structured tracing: hierarchical spans in ring buffers.

A :class:`Tracer` records :class:`Span` records — monotonic start/end,
thread id, parent span id, and a small dict of typed attributes — into
*per-thread ring buffers*:

* **Lock-free appends.**  Each thread owns its buffer; the tracer's
  lock is taken only once per thread, at buffer creation.  A span close
  is an end-timestamp write plus a list append (or, at capacity, an
  index store) on the owning thread — no cross-thread contention on the
  hot path.
* **Bounded memory.**  Each buffer holds at most
  ``max_spans_per_thread`` finished spans; beyond that, the oldest are
  overwritten and :attr:`Tracer.dropped` counts what was lost.  A
  tracer can therefore stay attached to a long-lived service without
  growing without bound.
* **Cross-thread parent linkage.**  The current span is tracked in a
  ``threading.local`` stack; fan-out sites (morsel tasks) capture the
  dispatching thread's span id with :meth:`Tracer.current_span_id` and
  pass it as an explicit ``parent`` so a worker's spans hang under the
  region that dispatched them.

Disarmed cost is zero by construction: engine code never calls the
tracer directly — it checks an attribute for ``None`` first (see
``ExecutionMetrics.tracer``), the same discipline as
:func:`repro.testing.faults.fault_point`.

>>> tracer = Tracer()
>>> with tracer.span("query", query="q1") as outer:
...     with tracer.span("optimize") as inner:
...         pass
>>> spans = tracer.spans()
>>> [s.name for s in spans]
['query', 'optimize']
>>> spans[1].parent_id == spans[0].span_id
True
"""

from __future__ import annotations

import itertools
import json
import threading
import time

_span_ids = itertools.count(1)
# Bound once: the hot path calls the clock twice per span, and a global
# load beats the attribute chain.
_clock = time.perf_counter


class Span:
    """One traced region: a name, a wall-clock interval, attributes.

    ``end`` is ``None`` while the span is open.  ``attributes`` holds
    only scalars (str/int/float/bool) so export never chases object
    graphs.  An exception leaving the span body stamps an ``error``
    attribute — how timeout/cancel/degrade causes attach to the span
    that aborted (see the resilience instrumentation).
    """

    __slots__ = (
        "span_id", "parent_id", "name", "thread_id",
        "start", "end", "attributes", "_tracer",
    )

    def __init__(
        self,
        name: str,
        parent_id: int | None,
        thread_id: int,
        start: float,
        attributes: dict,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.name = name
        self.thread_id = thread_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self._tracer = tracer

    # The span is its own context manager (no per-span scope object —
    # one allocation per traced region is the hot-path budget).
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._close(self)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def is_event(self) -> bool:
        """Point events have zero extent by construction (end==start)."""
        return self.end == self.start

    def set(self, **attributes) -> None:
        """Attach attributes to an open span (e.g. rows out, hit/miss)."""
        self.attributes.update(attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f} ms)"
        )


class _ThreadBuffer:
    """Per-thread recording state: the span ring plus the open-span stack.

    Owned by exactly one thread, so appends and stack pushes are plain
    list operations with no locking.  ``ident`` caches the owning
    thread's id so the hot path skips ``threading.get_ident()``.
    """

    __slots__ = (
        "spans", "capacity", "write_index", "dropped", "stack", "ident",
    )

    def __init__(self, capacity: int, ident: int) -> None:
        self.spans: list[Span] = []
        self.capacity = capacity
        self.write_index = 0
        self.dropped = 0
        self.stack: list[Span] = []
        self.ident = ident

    def append(self, span: Span) -> None:
        if len(self.spans) < self.capacity:
            self.spans.append(span)
            return
        # At capacity: overwrite the oldest (bounded memory cap).
        self.spans[self.write_index] = span
        self.write_index = (self.write_index + 1) % self.capacity
        self.dropped += 1


class Tracer:
    """Records hierarchical spans; one instance may serve many queries.

    Parameters
    ----------
    max_spans_per_thread:
        Ring-buffer capacity per recording thread.  The memory cap is
        ``threads × max_spans_per_thread × O(one span)``.
    telemetry:
        Optional :class:`~repro.obs.telemetry.ServiceTelemetry`; every
        finished span is offered to it (the service uses this to feed
        the morsel-task duration histogram without a second clock).
    """

    def __init__(
        self, max_spans_per_thread: int = 8192, telemetry=None
    ) -> None:
        self._capacity = max(int(max_spans_per_thread), 1)
        self.telemetry = telemetry
        self._registry_lock = threading.Lock()
        self._buffers: dict[int, _ThreadBuffer] = {}
        self._local = threading.local()

    # -- recording ------------------------------------------------------

    def span(
        self, name: str, parent: int | None = None, **attributes
    ) -> Span:
        """Open a span; use the returned :class:`Span` as a context manager.

        Without an explicit ``parent`` the span nests under the current
        thread's innermost open span.  Fan-out callers pass the
        dispatching span's id (:meth:`current_span_id`) so worker-side
        spans keep their place in the query's hierarchy.
        """
        state = self._state()
        stack = state.stack
        if parent is None and stack:
            parent = stack[-1].span_id
        span = Span(
            name,
            parent,
            state.ident,
            _clock(),
            attributes,  # the kwargs dict is fresh; owned by the span
            self,
        )
        stack.append(span)
        return span

    def event(self, name: str, parent: int | None = None, **attributes) -> Span:
        """Record a zero-duration point event under the current span."""
        state = self._state()
        stack = state.stack
        if parent is None and stack:
            parent = stack[-1].span_id
        span = Span(
            name,
            parent,
            state.ident,
            _clock(),
            attributes,
        )
        span.end = span.start
        state.append(span)
        return span

    def current_span_id(self) -> int | None:
        """Id of this thread's innermost open span (fan-out linkage)."""
        stack = self._state().stack
        return stack[-1].span_id if stack else None

    def _close(self, span: Span) -> None:
        span.end = _clock()
        state = self._state()
        stack = state.stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested close; keep the stack sane
            try:
                stack.remove(span)
            except ValueError:
                pass
        state.append(span)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.observe_span(span)

    def _state(self) -> _ThreadBuffer:
        state = getattr(self._local, "state", None)
        if state is None:
            ident = threading.get_ident()
            state = _ThreadBuffer(self._capacity, ident)
            self._local.state = state
            with self._registry_lock:
                self._buffers[ident] = state
        return state

    # -- reading --------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """All finished spans (optionally filtered by name), by start time.

        Worker threads may still be appending; under the GIL a list
        append is atomic, so readers see a consistent prefix — callers
        wanting a complete picture read after the query's barrier, which
        is where the service and ``explain_analyze`` read.
        """
        with self._registry_lock:
            buffers = list(self._buffers.values())
        collected: list[Span] = []
        for buffer in buffers:
            collected.extend(buffer.spans)
        if name is not None:
            collected = [span for span in collected if span.name == name]
        collected.sort(key=lambda span: (span.start, span.span_id))
        return collected

    @property
    def dropped(self) -> int:
        """Finished spans overwritten by the ring-buffer memory cap."""
        with self._registry_lock:
            buffers = list(self._buffers.values())
        return sum(buffer.dropped for buffer in buffers)

    def reset(self) -> None:
        """Drop every recorded span (open spans keep recording)."""
        with self._registry_lock:
            buffers = list(self._buffers.values())
        for buffer in buffers:
            buffer.spans = []
            buffer.write_index = 0
            buffer.dropped = 0

    # -- export ---------------------------------------------------------

    def export_chrome(self) -> str:
        """The recorded spans as Chrome trace-event JSON.

        Load the returned string (saved to a file) in
        ``chrome://tracing`` or https://ui.perfetto.dev to inspect a
        query's timeline — the morsel fan-out shows up as parallel
        tracks, one per worker thread.  Spans become complete (``"X"``)
        events, point events become instants (``"i"``); timestamps are
        microseconds on the shared monotonic clock, so spans from
        different threads line up.
        """
        events = []
        for span in self.spans():
            args = {
                key: value for key, value in span.attributes.items()
            }
            if span.parent_id is not None:
                args["parent_span"] = span.parent_id
            args["span_id"] = span.span_id
            entry = {
                "name": span.name,
                "ph": "i" if span.is_event else "X",
                "ts": span.start * 1e6,
                "pid": 1,
                "tid": span.thread_id,
                "args": args,
            }
            if not span.is_event:
                entry["dur"] = span.duration * 1e6
            else:
                entry["s"] = "t"  # instant scoped to its thread track
            events.append(entry)
        return json.dumps({"traceEvents": events}, indent=1)

    def write_chrome(self, path) -> None:
        """Write :meth:`export_chrome` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.export_chrome(), encoding="utf-8")
