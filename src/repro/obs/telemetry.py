"""Log-bucketed latency/row histograms and the service telemetry registry.

:class:`LogHistogram` counts observations in power-of-two buckets of
``value / resolution`` — 64 buckets cover any latency from one
microsecond to decades, so recording is one division, one
``bit_length`` and one list increment, with no allocation after
construction.  Quantiles (p50/p95/p99) are estimated from the bucket
cumulative counts using the geometric midpoint of the matched bucket's
range; error is bounded by the factor-of-two bucket width, which is the
standard trade (HdrHistogram-style) for always-on latency tracking.

Histograms merge bucket-wise, the same discipline as
:meth:`repro.engine.metrics.ExecutionMetrics.merge_counters`, so
per-shard or per-process registries can be folded into one report.

:class:`ServiceTelemetry` is the registry the service keeps: execute
latency, optimize time, filter-build time, morsel task duration (all at
1 µs resolution) and output rows (resolution 1).  It is cheap enough to
stay always-on for values the service has already measured; the only
histogram that needs the tracer armed is morsel task duration, fed by
:meth:`observe_span` when a :class:`~repro.obs.trace.Tracer` with a
``telemetry`` hook closes a ``morsel`` span.
"""

from __future__ import annotations

import threading

_QUANTILES = (0.50, 0.95, 0.99)
_MAX_BUCKETS = 64


class LogHistogram:
    """Mergeable histogram with power-of-two buckets.

    Bucket ``b`` holds values with ``int(value / resolution)`` of bit
    length ``b``; bucket 0 holds values below ``resolution``.  The
    value range representative for quantiles is the geometric mean of
    the bucket's bounds.
    """

    __slots__ = ("resolution", "_counts", "count", "total", "_min", "_max", "_lock")

    def __init__(self, resolution: float = 1e-6) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._counts = [0] * _MAX_BUCKETS
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def _bucket(self, value: float) -> int:
        units = int(value / self.resolution)
        if units <= 0:
            return 0
        return min(units.bit_length(), _MAX_BUCKETS - 1)

    def record(self, value: float) -> None:
        """Count one observation (negative values clamp to bucket 0)."""
        bucket = self._bucket(value)
        with self._lock:
            self._counts[bucket] += 1
            self.count += 1
            self.total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            # Nearest-rank: the smallest bucket whose cumulative count
            # covers ceil(q * count) observations.
            rank = max(q * self.count, 1.0)
            seen = 0
            for bucket, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank:
                    return self._representative(bucket)
            return self._representative(_MAX_BUCKETS - 1)  # pragma: no cover

    def _representative(self, bucket: int) -> float:
        # Clamp the modelled bucket range to observed extremes so small
        # samples aren't reported at a factor-of-two offset.
        if bucket == 0:
            low, high = 0.0, self.resolution
        else:
            low = (1 << (bucket - 1)) * self.resolution
            high = (1 << bucket) * self.resolution
        mid = (low * high) ** 0.5 if low > 0 else high / 2
        if self._max is not None:
            mid = min(mid, self._max)
        if self._min is not None:
            mid = max(mid, self._min)
        return mid

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s buckets into this histogram, bucket-wise."""
        if other.resolution != self.resolution:
            raise ValueError(
                "cannot merge histograms with different resolutions: "
                f"{self.resolution} vs {other.resolution}"
            )
        with other._lock:
            counts = list(other._counts)
            count = other.count
            total = other.total
            other_min = other._min
            other_max = other._max
        with self._lock:
            for bucket, bucket_count in enumerate(counts):
                self._counts[bucket] += bucket_count
            self.count += count
            self.total += total
            if other_min is not None and (self._min is None or other_min < self._min):
                self._min = other_min
            if other_max is not None and (self._max is None or other_max > self._max):
                self._max = other_max

    def snapshot(self) -> dict:
        """Count/total/min/max plus p50/p95/p99 estimates, as a dict."""
        with self._lock:
            count = self.count
            total = self.total
            low = self._min
            high = self._max
        result = {
            "count": count,
            "total": total,
            "mean": (total / count) if count else 0.0,
            "min": low if low is not None else 0.0,
            "max": high if high is not None else 0.0,
        }
        for q in _QUANTILES:
            result[f"p{int(q * 100)}"] = self.quantile(q)
        return result


# Histogram names -> resolution. Latencies at 1 µs; counts at 1.
# ``admission_wait_seconds`` (time a query spent queued before
# dispatch) and ``queue_depth`` (admission queue depth observed at each
# arrival) fill only on the admission-controlled async path
# (:class:`repro.service.AsyncQueryService`).
_HISTOGRAMS = {
    "execute_seconds": 1e-6,
    "optimize_seconds": 1e-6,
    "filter_build_seconds": 1e-6,
    "morsel_task_seconds": 1e-6,
    "output_rows": 1.0,
    "admission_wait_seconds": 1e-6,
    "queue_depth": 1.0,
}

# Span names a tracer feeds straight into histograms on span close.
_SPAN_HISTOGRAMS = {
    "morsel": "morsel_task_seconds",
}


class ServiceTelemetry:
    """Registry of the service's standing histograms.

    Always-on values (execute/optimize/filter-build latency, output
    rows) are recorded from numbers the service already measured, so
    the cost is one histogram increment per query.  ``morsel_task_seconds``
    fills only while a tracer is armed — workers do not carry a second
    clock on the disarmed path.
    """

    def __init__(self) -> None:
        self.histograms: dict[str, LogHistogram] = {
            name: LogHistogram(resolution)
            for name, resolution in _HISTOGRAMS.items()
        }

    def record(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (must be registered)."""
        self.histograms[name].record(value)

    def observe_span(self, span) -> None:
        """Tracer hook: fold recognised span durations into histograms."""
        target = _SPAN_HISTOGRAMS.get(span.name)
        if target is not None:
            self.histograms[target].record(span.duration)

    def merge(self, other: "ServiceTelemetry") -> None:
        """Fold another registry's histograms into this one."""
        for name, histogram in self.histograms.items():
            histogram.merge(other.histograms[name])

    def snapshot(self) -> dict:
        """Per-histogram snapshots, keyed by histogram name."""
        return {
            name: histogram.snapshot()
            for name, histogram in self.histograms.items()
        }
