"""Parallel build-side experiment: partitioned filter builds vs. serial.

The tentpole claim of the parallel-build PR: bitvector filter
construction — the cost the paper's Section 6.3 threshold polices — no
longer runs on one thread.  At ``parallelism > 1`` the executor builds
each filter from per-morsel partials merged on a deterministic barrier
(see :meth:`repro.engine.executor.Executor._build_join_filter`), so a
large-dimension build scales with workers while the published filter
stays byte-equivalent to a serial build.

The workload is one large-dimension star join (the dimension is bigger
than the fact table — the Amdahl case morsel-parallel probing alone
cannot help): every execution rebuilds the join's filter cold (no
filter cache), and the *build phase* is metered separately via
``ExecutionMetrics.filter_build_seconds``, so the reported speedup
isolates exactly the phase this PR parallelizes.  Every registry filter
kind runs at every parallelism level; answers must be byte-identical
across levels for each kind (the partitioned-build contract — drift is
a correctness bug, not noise).

Used by ``benchmarks/test_build_parallel.py`` (asserting the 1.8x
build-phase bar on >= 4 cores) and by the CLI::

    python -m repro.bench --experiment build-parallel \
        --output BENCH_build_parallel.json

so the build-phase trajectory accumulates in-repo as a JSON artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import available_cores
from repro.engine.executor import Executor
from repro.filters.registry import FILTER_KINDS
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.expr.expressions import Comparison, col, lit
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table

# Large dimension, smaller fact: the build pass (gather + factorize +
# insert 60% of the dimension keys) dominates, which is the regime the
# partitioned build targets.
DEFAULT_DIM_ROWS = 1_500_000
DEFAULT_FACT_ROWS = 500_000

# The dimension's local predicate keeps this fraction of its rows, so
# the filter is built over a reduced-but-still-large key set.
_BUILD_FRACTION = 0.6


def build_dimension_database(
    dim_rows: int = DEFAULT_DIM_ROWS,
    fact_rows: int = DEFAULT_FACT_ROWS,
    seed: int = 11,
) -> Database:
    """One big dimension + one fact referencing it uniformly.

    Keys are integers (the decision-support case): the build-side
    kernels — fancy-index gathers, ``np.unique`` sorts, hashing ufuncs
    — all release the GIL, which is where the partitioned build's
    speedup comes from.
    """
    rng = np.random.default_rng(seed)
    database = Database("build_parallel")
    database.add_table(
        Table.from_arrays(
            "big_dim",
            {
                "id": np.arange(dim_rows),
                "attr": rng.integers(0, 100, dim_rows),
            },
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk": rng.integers(0, dim_rows, fact_rows),
                "m": rng.normal(size=fact_rows).round(6),
            },
        ),
        validate_key=False,
    )
    database.add_foreign_key(ForeignKey("fact", ("fk",), "big_dim", ("id",)))
    return database


def build_parallel_plan(database: Database):
    """The large-dimension join, dimension forced onto the build side.

    Constructed directly (not through cost-based selection) so the
    join always creates its bitvector: the experiment measures build
    mechanics, and must keep measuring them even as the optimizer's
    thresholds move.
    """
    cut = int(100 * _BUILD_FRACTION)
    spec = QuerySpec(
        name="build_parallel",
        relations=(
            RelationRef("f", "fact"),
            RelationRef("d", "big_dim"),
        ),
        join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
        local_predicates={
            "d": Comparison("<", col("d", "attr"), lit(cut)),
        },
        aggregates=(
            Aggregate("count", label="cnt"),
            Aggregate("sum", col("f", "m"), label="total"),
        ),
    )
    graph = JoinGraph(spec, database.catalog)
    plan = push_down_bitvectors(build_right_deep(graph, ["f", "d"]))
    return attach_aggregate(plan, spec)


def _aggregate_bytes(result) -> tuple:
    return tuple(
        (label, values.tobytes())
        for label, values in sorted(result.aggregates.items())
    )


def run_build_parallel(
    dim_rows: int = DEFAULT_DIM_ROWS,
    fact_rows: int = DEFAULT_FACT_ROWS,
    parallelism_levels: tuple[int, ...] = (1, 4),
    morsel_rows: int = 16384,
    rounds: int = 3,
) -> dict:
    """Measure the filter build phase at each parallelism level.

    Every (filter kind, parallelism) combination executes the plan with
    *no* filter cache — each execution pays a cold build — after one
    untimed warmup that populates dictionaries, zone maps, and the
    table morsel cache.  Per level the best-of-N build-phase seconds
    (``filter_build_seconds``) and whole-query seconds are reported;
    ``build_speedup`` anchors on the ``parallelism=1`` level.  Answers
    are compared byte-for-byte across levels per kind.
    """
    database = build_dimension_database(dim_rows, fact_rows)
    plan = build_parallel_plan(database)
    kinds: dict[str, dict] = {}
    for kind in sorted(FILTER_KINDS):
        measured: list[dict] = []
        reference_bytes = None
        results_identical = True
        for parallelism in parallelism_levels:
            executor = Executor(
                database,
                filter_kind=kind,
                parallelism=parallelism,
                morsel_rows=morsel_rows,
            )
            warm = executor.execute(plan)
            if reference_bytes is None:
                reference_bytes = _aggregate_bytes(warm)
            elif _aggregate_bytes(warm) != reference_bytes:
                results_identical = False
            best_build = float("inf")
            best_total = float("inf")
            builds_parallel = 0
            for _ in range(rounds):
                started = time.perf_counter()
                result = executor.execute(plan)
                total = time.perf_counter() - started
                best_total = min(best_total, total)
                best_build = min(
                    best_build, result.metrics.filter_build_seconds
                )
                builds_parallel = result.metrics.filter_builds_parallel
            measured.append(
                {
                    "parallelism": parallelism,
                    "build_seconds": round(best_build, 6),
                    "total_seconds": round(best_total, 6),
                    "partitioned_builds": builds_parallel,
                }
            )
        baseline = next(
            (
                level["build_seconds"]
                for level in measured
                if level["parallelism"] == 1
            ),
            measured[0]["build_seconds"],
        )
        for level in measured:
            level["build_speedup"] = round(
                baseline / max(level["build_seconds"], 1e-9), 3
            )
        kinds[kind] = {
            "levels": measured,
            "results_identical": results_identical,
        }

    def _speedup_at(kind: str, parallelism: int) -> float:
        levels = kinds[kind]["levels"]
        entry = next(
            (
                level
                for level in levels
                if level["parallelism"] == parallelism
            ),
            levels[-1],
        )
        return entry["build_speedup"]

    top_level = max(parallelism_levels)
    return {
        "experiment": "build_parallel",
        "workload": "large-dimension star join (cold filter builds)",
        "dim_rows": dim_rows,
        "fact_rows": fact_rows,
        "build_fraction": _BUILD_FRACTION,
        "morsel_rows": morsel_rows,
        "rounds": rounds,
        "parallelism_levels": list(parallelism_levels),
        "cpu_cores": available_cores(),
        "kinds": kinds,
        "build_speedup_at_top": _speedup_at("exact", top_level),
        "top_parallelism": top_level,
        "results_identical": all(
            entry["results_identical"] for entry in kinds.values()
        ),
    }


def write_build_parallel_report(payload: dict, path: str | Path) -> Path:
    """Write the payload as JSON (the in-repo perf artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
