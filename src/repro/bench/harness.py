"""Run a workload under one or more optimization pipelines.

For every (query, pipeline) pair the harness optimizes, executes, and
records: metered CPU (the deterministic per-tuple cost model evaluated
on actual counts), wall-clock process time, tuples output per operator
class, whether any bitvector filter was used, and a result checksum so
cross-pipeline answer consistency is verified on the spot — a plan that
returns different answers is a bug, not a speedup.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cost.constants import CostConstants, DEFAULT_COSTS, DEFAULT_LAMBDA_THRESH
from repro.engine.executor import Executor
from repro.engine.parallel import DEFAULT_MORSEL_ROWS
from repro.errors import ExecutionError
from repro.optimizer.pipelines import optimize_query
from repro.plan.nodes import HashJoinNode
from repro.query.spec import QuerySpec
from repro.storage.database import Database
from repro.util.timer import CpuTimer


@dataclasses.dataclass
class QueryRun:
    """Measured execution of one query under one pipeline."""

    query: str
    pipeline: str
    metered_cpu: float
    wall_seconds: float
    tuples_by_kind: dict[str, int]
    output_rows: int
    estimated_cout: float
    num_joins: int
    num_filters_created: int
    checksum: float


@dataclasses.dataclass
class WorkloadResult:
    """All runs of a workload, indexed by (query, pipeline)."""

    workload: str
    pipelines: tuple[str, ...]
    runs: dict[tuple[str, str], QueryRun]

    def run(self, query: str, pipeline: str) -> QueryRun:
        return self.runs[(query, pipeline)]

    def queries(self) -> list[str]:
        seen: list[str] = []
        for query, _ in self.runs:
            if query not in seen:
                seen.append(query)
        return seen

    def total_cpu(self, pipeline: str) -> float:
        return sum(
            run.metered_cpu
            for (_, run_pipeline), run in self.runs.items()
            if run_pipeline == pipeline
        )

    def total_tuples_by_kind(self, pipeline: str) -> dict[str, int]:
        totals: dict[str, int] = {}
        for (_, run_pipeline), run in self.runs.items():
            if run_pipeline != pipeline:
                continue
            for kind, count in run.tuples_by_kind.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals


def _checksum(result) -> float:
    """Order-insensitive scalar digest of a query result."""
    if result.aggregates is not None:
        total = 0.0
        for values in result.aggregates.values():
            array = np.asarray(values)
            if array.dtype.kind in ("i", "u", "f", "b"):
                numeric = array.astype(np.float64)
            else:
                # group-by text columns: fold a stable per-value digest
                from repro.util.hashing import stable_text_hash

                numeric = (
                    stable_text_hash(array).astype(np.float64) % 1_000_003.0
                )
            numeric = numeric[np.isfinite(numeric)]
            total += float(np.sort(numeric).sum())
        return total
    return float(result.relation.num_rows)


def run_workload(
    workload_name: str,
    database: Database,
    queries: list[QuerySpec],
    pipelines: tuple[str, ...] = ("original", "bqo"),
    filter_kind: str = "exact",
    lambda_thresh: float = DEFAULT_LAMBDA_THRESH,
    constants: CostConstants = DEFAULT_COSTS,
    verify_consistency: bool = True,
    parallelism: int = 1,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
) -> WorkloadResult:
    """Optimize and execute every query under every pipeline.

    With ``verify_consistency`` (and an exact filter kind) the harness
    raises if two pipelines disagree on a query's answer.
    ``parallelism``/``morsel_rows`` configure morsel-driven execution;
    the default 1 runs the exact serial engine, keeping every seed
    benchmark comparable.
    """
    executor = Executor(
        database,
        filter_kind=filter_kind,
        parallelism=parallelism,
        morsel_rows=morsel_rows,
    )
    runs: dict[tuple[str, str], QueryRun] = {}
    for spec in queries:
        checksums: dict[str, float] = {}
        for pipeline in pipelines:
            optimized = optimize_query(
                database, spec, pipeline, lambda_thresh=lambda_thresh
            )
            timer = CpuTimer()
            with timer:
                result = executor.execute(optimized.plan)
            filters_created = sum(
                1
                for node in optimized.plan.walk()
                if isinstance(node, HashJoinNode)
                and node.created_bitvector is not None
            )
            checksum = _checksum(result)
            checksums[pipeline] = checksum
            runs[(spec.name, pipeline)] = QueryRun(
                query=spec.name,
                pipeline=pipeline,
                metered_cpu=result.metrics.metered_cpu(constants),
                wall_seconds=timer.seconds,
                tuples_by_kind=result.metrics.tuples_by_kind(),
                output_rows=result.num_rows,
                estimated_cout=optimized.estimated_cout,
                num_joins=len(spec.join_predicates),
                num_filters_created=filters_created,
                checksum=checksum,
            )
        if verify_consistency and filter_kind == "exact" and len(checksums) > 1:
            values = list(checksums.values())
            reference = values[0]
            for value in values[1:]:
                if not np.isclose(value, reference, rtol=1e-9, atol=1e-6):
                    raise ExecutionError(
                        f"pipelines disagree on {spec.name}: {checksums}"
                    )
    return WorkloadResult(
        workload=workload_name, pipelines=tuple(pipelines), runs=runs
    )
