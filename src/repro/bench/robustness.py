"""Robustness benchmark: what resilience enforcement costs and buys.

Three scenarios, one JSON artifact (``BENCH_robustness.json``):

* **Deadline overhead** — the warm tpcds_lite workload executed with no
  context versus with a generous armed deadline.  Enforcement is one
  monotonic-clock read and two compares per checkpoint, so the warm-
  path overhead must stay under 2%; answers must be checksum-identical
  because checkpoints never change execution order.
* **Shedding & degradation rates** — an oversized star workload pushed
  through a :class:`~repro.service.QueryService` twice: once with an
  unmeetable per-call deadline on a slice of the batch (admission-style
  shedding, counted as enforced timeouts), once with a one-row resource
  budget under ``degrade="serial"`` (every query breaches, answers
  still land on the serial fallback, counted as degradations).
* **Recovery latency** — seeded faults injected into morsel tasks kill
  one query per round; the benchmark measures how long the very next
  (successful) run of the same statement takes on the same service and
  checks its answer against a serial oracle.

Used by ``benchmarks/test_robustness_bench.py`` (loose gates, CI-noise
tolerant) and by the CLI::

    python -m repro.bench --experiment robustness \
        --output BENCH_robustness.json

The committed artifact carries the tight numbers from a quiet machine.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import _checksum
from repro.bench.reporting import available_cores
from repro.bench.scaling import star_workload_sqls
from repro.engine.context import ExecutionContext, ResourceBudget
from repro.engine.executor import Executor
from repro.errors import QueryTimeout, ReproError
from repro.filters.cache import BitvectorFilterCache
from repro.optimizer.pipelines import optimize_query
from repro.service import QueryService
from repro.testing import FaultPlan, inject
from repro.workloads import star, tpcds_lite

DEFAULT_SCALE = 0.1
#: Deadline far above any tpcds_lite query: the check itself is what
#: gets measured, never an actual expiry.
_GENEROUS_DEADLINE_SECONDS = 3600.0
#: Every Nth stress query gets an unmeetable deadline (the shed slice).
_SHED_EVERY = 4


def _workload_seconds(executor, plans, contexts, rounds: int) -> float:
    """Best-of-N warm wall clock (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for plan, context in zip(plans, contexts):
            executor.execute(plan, context=context)
        best = min(best, time.perf_counter() - started)
    return best


def _measure_overhead(scale: float, rounds: int) -> dict:
    """Warm tpcds_lite, deadline checks off vs. armed."""
    database, queries = tpcds_lite.build(scale=scale)
    plans = [
        optimize_query(database, spec, "bqo").plan for spec in queries
    ]
    executor = Executor(database, filter_cache=BitvectorFilterCache(64))
    warm = [executor.execute(plan) for plan in plans]
    baseline_checksum = round(sum(_checksum(r) for r in warm), 6)

    off = [None] * len(plans)
    baseline_seconds = _workload_seconds(executor, plans, off, rounds)

    armed = [
        ExecutionContext(
            query=spec.name, deadline=_GENEROUS_DEADLINE_SECONDS
        )
        for spec in queries
    ]
    armed_results = [
        executor.execute(plan, context=context)
        for plan, context in zip(plans, armed)
    ]
    armed_checksum = round(sum(_checksum(r) for r in armed_results), 6)
    # Fresh contexts per timed round: arming cost (Deadline + token
    # construction) is part of what enforcement charges per query.
    armed_seconds = _workload_seconds(
        executor,
        plans,
        [
            ExecutionContext(
                query=spec.name, deadline=_GENEROUS_DEADLINE_SECONDS
            )
            for spec in queries
        ],
        rounds,
    )
    return {
        "workload": "tpcds_lite",
        "scale": scale,
        "queries": len(plans),
        "rounds": rounds,
        "baseline_seconds": round(baseline_seconds, 6),
        "deadline_armed_seconds": round(armed_seconds, 6),
        "overhead_fraction": round(
            armed_seconds / max(baseline_seconds, 1e-9) - 1.0, 6
        ),
        "checksums_identical": baseline_checksum == armed_checksum,
    }


def _measure_stress(scale: float) -> dict:
    """Shed and degrade rates on an oversized star workload."""
    database = star.build_database(scale=scale)
    sqls = star_workload_sqls()

    # Scenario A: a slice of the batch carries an unmeetable deadline
    # and is shed at the first cooperative checkpoint.
    shedding = QueryService(database, parallelism=2)
    shed = 0
    for i, sql in enumerate(sqls):
        deadline = 1e-7 if i % _SHED_EVERY == 0 else None
        try:
            shedding.execute(sql, name=f"shed_{i}", deadline_seconds=deadline)
        except QueryTimeout:
            shed += 1
    shed_stats = shedding.stats()

    # Scenario B: a one-row budget every query breaches; the serial
    # fallback still answers, recorded as graceful degradations.
    degrading = QueryService(
        database,
        parallelism=2,
        budget=ResourceBudget(max_rows_copied=1),
        degrade="serial",
    )
    answered = sum(
        1
        for i, sql in enumerate(sqls)
        if degrading.execute(sql, name=f"deg_{i}").ok
    )
    degrade_stats = degrading.stats()

    return {
        "workload": "star-20q",
        "scale": scale,
        "queries_issued": len(sqls),
        "enforced_timeouts": shed_stats.timeouts,
        "shed_rate": round(shed_stats.timeouts / len(sqls), 4),
        "completed_under_shedding": shed_stats.queries,
        "degradations": degrade_stats.degradations,
        "degrade_rate": round(degrade_stats.degradations / len(sqls), 4),
        "answered_under_degradation": answered,
        "degraded_failures": degrade_stats.failures,
        "shed_matches_slice": shed == shed_stats.timeouts,
    }


def _measure_recovery(scale: float, chaos_rounds: int, seed: int) -> dict:
    """Wall clock from an injected failure to the next clean answer."""
    database = star.build_database(scale=scale)
    sql = star_workload_sqls()[-1]  # the widest query (4 dimensions)
    oracle = _checksum(QueryService(database).execute(sql).result)

    service = QueryService(database, parallelism=4)
    service.execute(sql)  # warm plan/filter caches and the pool
    latencies = []
    identical = True
    for round_index in range(chaos_rounds):
        plan = FaultPlan(seed=seed + round_index).raise_at(
            "morsel.task", invocation=round_index
        )
        with inject(plan):
            try:
                service.execute(sql, name=f"chaos_{round_index}")
            except ReproError:
                pass
        started = time.perf_counter()
        recovered = service.execute(sql, name=f"recovered_{round_index}")
        latencies.append(time.perf_counter() - started)
        identical = identical and _checksum(recovered.result) == oracle
    return {
        "workload": "star (widest query)",
        "scale": scale,
        "chaos_rounds": chaos_rounds,
        "seed": seed,
        "mean_recovery_seconds": round(sum(latencies) / len(latencies), 6),
        "max_recovery_seconds": round(max(latencies), 6),
        "answers_identical_to_serial_oracle": identical,
        "failures_observed": chaos_rounds,
    }


def run_robustness(
    scale: float = DEFAULT_SCALE,
    rounds: int = 5,
    chaos_rounds: int = 5,
    seed: int = 7,
) -> dict:
    """Run all three scenarios; returns a JSON-ready payload."""
    return {
        "experiment": "robustness",
        "cpu_cores": available_cores(),
        "deadline_overhead": _measure_overhead(scale, rounds),
        "stress": _measure_stress(scale),
        "recovery": _measure_recovery(scale, chaos_rounds, seed),
    }


def write_robustness_report(payload: dict, path: str | Path) -> Path:
    """Write the robustness payload as JSON (the in-repo artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
