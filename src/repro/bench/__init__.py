"""Experiment harness: run workloads under optimizer pipelines and
reproduce the paper's figures and tables."""

from repro.bench.harness import QueryRun, WorkloadResult, run_workload
from repro.bench.reporting import (
    selectivity_groups,
    figure8_rows,
    figure9_rows,
    figure10_rows,
    table3_rows,
    table4_rows,
    render_table,
)

__all__ = [
    "QueryRun",
    "WorkloadResult",
    "run_workload",
    "selectivity_groups",
    "figure8_rows",
    "figure9_rows",
    "figure10_rows",
    "table3_rows",
    "table4_rows",
    "render_table",
]
