"""Plan-quality experiment: estimator q-error vs. observed cardinalities.

The optimizer is only as good as the cardinalities it plans with, so
this experiment executes the TPC-DS-lite workload and compares, per
plan operator, the :class:`~repro.cost.cout.EstimatedCardModel` row
count against the row count the executor actually observed.  The
standard figure of merit is the *q-error*::

    q(node) = max(estimate / observed, observed / estimate)

(1.0 is a perfect estimate; the metric is symmetric in over- and
under-estimation).  Results are broken out by cascades integration
mode — ``full`` (exhaustive memo extraction) vs. ``shallow`` (the
pinned BQO snowflake rule) — because the two modes can pick different
join orders and therefore expose different intermediate results to the
estimator.

A second section exercises the top-k zone-map early exit: clustered
``ORDER BY ... LIMIT`` scans over ``date_dim`` (surrogate keys are
stored in sorted order) must prune morsels when zone maps are on and
stay byte-identical to the zone-map-off run.  Used by
``benchmarks/test_plan_quality.py`` and by the CLI::

    python -m repro.bench --experiment plan-quality \
        --output BENCH_plan_quality.json
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import numpy as np

from repro.bench.reporting import available_cores
from repro.cascades import CascadesOptimizer
from repro.cost.cout import EstimatedCardModel
from repro.engine.executor import Executor
from repro.plan.builder import attach_aggregate
from repro.plan.nodes import FilterNode, HashJoinNode, ScanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.sql.binder import parse_query
from repro.stats.estimator import CardinalityEstimator
from repro.workloads import tpcds_lite

DEFAULT_SCALE = 0.1

# Cascades ``full`` mode extracts up to 4000 plans per memo, so the
# q-error sweep sticks to queries with modest join graphs (<= 4
# relations).  The subset still spans stars, snowflake chains,
# group-bys, and the new HAVING / ORDER BY ... LIMIT report shapes.
DEFAULT_QUERIES = (
    "ds_q01",
    "ds_q02",
    "ds_q03",
    "ds_q05",
    "ds_q09",
    "ds_q10",
    "ds_q12",
    "ds_q16",
    "ds_q19",
    "ds_q26",
    "ds_q27",
    "ds_q30",
)

MODES = ("full", "shallow")

# Clustered top-k scans for the early-exit section, over the sorted
# fact layout from the zone-map pruning experiment (the calendar
# dimensions of tpcds_lite are too small to split into multiple
# morsels — MIN_MORSEL_ROWS floors the partitioner at 1024 rows).
TOPK_SQLS = (
    (
        "topk_key_desc",
        "SELECT f.f_key, f.f_val FROM fact f "
        "ORDER BY f.f_key DESC LIMIT 50",
    ),
    (
        "topk_key_asc",
        "SELECT f.f_key, f.f_val FROM fact f "
        "ORDER BY f.f_key ASC LIMIT 80",
    ),
    (
        "topk_key_then_val",
        "SELECT f.f_key, f.f_val FROM fact f "
        "ORDER BY f.f_key DESC, f.f_val ASC LIMIT 30",
    ),
)

TOPK_ROWS = 200_000
TOPK_MORSEL_ROWS = 8192


def _q_error(estimate: float, observed: float) -> float:
    estimate = max(float(estimate), 1.0)
    observed = max(float(observed), 1.0)
    return max(estimate / observed, observed / estimate)


def _node_kind(node) -> str:
    if isinstance(node, ScanNode):
        return "scan"
    if isinstance(node, FilterNode):
        return "filter"
    return "join"


def run_plan_quality(
    scale: float = DEFAULT_SCALE,
    query_names: tuple[str, ...] = DEFAULT_QUERIES,
    modes: tuple[str, ...] = MODES,
) -> dict:
    """Execute the workload per mode and collect per-operator q-errors.

    For each (query, mode) pair the cascades optimizer produces a join
    plan, bitvector push-down and the aggregate/top-k root are applied
    (exactly the pipeline the service layer runs), the plan executes,
    and every scan / join / residual-filter operator contributes one
    ``(estimated, observed, q_error)`` record.  The payload carries the
    raw records plus per-mode and per-operator-kind summaries.
    """
    database = tpcds_lite.build_database(scale)
    specs = {spec.name: spec for spec in tpcds_lite.queries(database)}
    executor = Executor(database)
    optimizer = CascadesOptimizer(database)

    mode_reports: dict[str, dict] = {}
    for mode in modes:
        records: list[dict] = []
        per_query: list[dict] = []
        for name in query_names:
            spec = specs[name]
            plan = optimizer.optimize(spec, mode)
            plan = push_down_bitvectors(plan)
            plan = attach_aggregate(plan, spec)
            result = executor.execute(plan)
            observed = {
                node.node_id: node.rows_out for node in result.metrics.nodes
            }
            model = EstimatedCardModel(
                CardinalityEstimator(database, spec.alias_tables)
            )
            query_errors: list[float] = []
            for node in plan.walk():
                if not isinstance(node, (ScanNode, HashJoinNode, FilterNode)):
                    continue
                if node.node_id not in observed:
                    continue
                estimate = model.rows_out(node)
                actual = observed[node.node_id]
                q_error = _q_error(estimate, actual)
                query_errors.append(q_error)
                records.append(
                    {
                        "query": name,
                        "operator": node.label,
                        "kind": _node_kind(node),
                        "estimated": round(float(estimate), 2),
                        "observed": int(actual),
                        "q_error": round(q_error, 4),
                    }
                )
            per_query.append(
                {
                    "query": name,
                    "operators": len(query_errors),
                    "median_q_error": round(statistics.median(query_errors), 4),
                    "max_q_error": round(max(query_errors), 4),
                }
            )
        errors = [record["q_error"] for record in records]
        by_kind: dict[str, dict] = {}
        for kind in ("scan", "join", "filter"):
            kind_errors = [
                record["q_error"] for record in records if record["kind"] == kind
            ]
            if kind_errors:
                by_kind[kind] = {
                    "operators": len(kind_errors),
                    "median_q_error": round(statistics.median(kind_errors), 4),
                    "max_q_error": round(max(kind_errors), 4),
                }
        mode_reports[mode] = {
            "operators": len(errors),
            "median_q_error": round(statistics.median(errors), 4),
            "p90_q_error": round(
                float(np.quantile(np.asarray(errors), 0.9)), 4
            ),
            "max_q_error": round(max(errors), 4),
            "by_kind": by_kind,
            "per_query": per_query,
            "records": records,
        }

    return {
        "experiment": "plan_quality",
        "workload": "tpcds_lite",
        "scale": scale,
        "queries": list(query_names),
        "modes": list(modes),
        "cpu_cores": available_cores(),
        "mode_reports": mode_reports,
        "topk_early_exit": run_topk_early_exit(),
    }


def run_topk_early_exit(rows: int = TOPK_ROWS) -> dict:
    """Clustered ORDER BY ... LIMIT scans: pruning on, answers equal."""
    from repro.bench.pruning import build_pruning_database
    from repro.optimizer.pipelines import optimize_query

    database = build_pruning_database(rows, "clustered")
    on = Executor(database, morsel_rows=TOPK_MORSEL_ROWS, zone_maps=True)
    off = Executor(database, morsel_rows=TOPK_MORSEL_ROWS, zone_maps=False)
    queries = []
    identical = True
    for name, sql in TOPK_SQLS:
        spec = parse_query(database, sql, name)
        plan = optimize_query(database, spec, "bqo").plan
        pruned_run = on.execute(plan)
        full_run = off.execute(plan)
        same = all(
            np.array_equal(
                np.asarray(pruned_run.relation.column(ref.alias, ref.column)),
                np.asarray(full_run.relation.column(ref.alias, ref.column)),
            )
            for ref in spec.select_columns
        )
        identical = identical and same
        queries.append(
            {
                "query": name,
                "rows_out": pruned_run.relation.num_rows,
                "morsels_pruned": pruned_run.metrics.morsels_pruned,
                "rows_skipped": pruned_run.metrics.rows_skipped,
                "identical_to_full_sort": same,
            }
        )
    return {
        "rows": rows,
        "morsel_rows": TOPK_MORSEL_ROWS,
        "queries": queries,
        "all_identical": identical,
        "total_morsels_pruned": sum(q["morsels_pruned"] for q in queries),
    }


def write_plan_quality_report(payload: dict, path: str | Path) -> Path:
    """Write the plan-quality payload as JSON (the in-repo artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
