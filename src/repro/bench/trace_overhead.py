"""Tracing overhead benchmark: observability must be (nearly) free.

The ``repro.obs`` tracer is strictly opt-in: every instrumented site in
the executor/service guards on ``metrics.tracer is not None`` — one
attribute load and a ``None`` test, the same discipline as cooperative
deadline checkpoints and fault points.  This benchmark holds that
contract to numbers, in one JSON artifact (``BENCH_trace_overhead.json``):

* **Armed overhead** — the warm tpcds_lite workload served through a
  :class:`~repro.service.QueryService`, untraced versus with a fresh
  :class:`~repro.obs.Tracer` armed per round (span construction,
  per-thread ring-buffer appends, histogram observation all included).
  Interleaved best-of-N rounds; the armed fraction must stay under 3%.
* **Disarmed noise floor** — two untraced passes measured the same
  way.  The disarmed instrumentation cost cannot be separated from
  scheduler noise, so the gate is that the *difference between two
  identical untraced runs* stays within 0.5% — "unmeasurable".
* **Answer identity** — per-query checksums with tracing on vs. off at
  parallelism 1 and 4 must match exactly: tracing observes execution,
  it never participates in it.

The payload also carries the armed service's telemetry snapshot
(latency/row histograms) and a rendered ``explain_analyze`` sample, so
the committed artifact doubles as documentation of the surfaces.

Used by ``benchmarks/test_trace_overhead.py`` (loose gates, CI-noise
tolerant) and by the CLI::

    python -m repro.bench --experiment trace-overhead \
        --output BENCH_trace_overhead.json

The committed artifact carries the tight numbers from a quiet machine.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import _checksum
from repro.bench.reporting import available_cores
from repro.obs import Tracer
from repro.service import QueryService
from repro.workloads import tpcds_lite

#: Large enough that morsel fan-out actually happens (a scale-0.1
#: workload runs mostly serial scans, which would under-exercise the
#: per-morsel instrumentation the overhead gate exists to police).
DEFAULT_SCALE = 0.2
DEFAULT_PARALLELISM = 4
#: Checksum identity is proven at these worker counts (serial and
#: fan-out paths exercise different instrumentation sites).
_IDENTITY_LEVELS = (1, 4)
#: The explain_analyze sample in the artifact profiles this query — a
#: three-table join with pruning, filter builds, and an aggregate.
_SAMPLE_QUERY = "ds_q30"


def _best_pass(service, sqls, tracer, best: list[float]) -> None:
    """One workload pass, folding per-query minima into ``best``.

    Per-query best-of-N is the noise strategy: a shared machine's
    interference is *bursty*, so whole-workload wall clocks jitter by
    percents no matter how many rounds run — but every query is only a
    few milliseconds, and over N rounds each one lands in a clean
    scheduling window at least once.  Summing per-query minima
    reconstructs an interference-free pass.
    """
    for index, (name, sql) in enumerate(sqls):
        started = time.perf_counter()
        service.execute(sql, name=name, tracer=tracer)
        elapsed = time.perf_counter() - started
        if elapsed < best[index]:
            best[index] = elapsed


def _measure_overhead(scale: float, rounds: int, parallelism: int) -> dict:
    """Warm tpcds_lite through the service, tracer off vs. armed.

    Rounds interleave off/armed/off so slow drift (cache warmth,
    frequency scaling) hits every mode equally.  A fresh Tracer per
    armed round charges arming itself — per-thread buffer registration
    included — to the traced side.
    """
    database, _specs = tpcds_lite.build(scale=scale)
    sqls = tpcds_lite.query_sqls()
    service = QueryService(database, parallelism=parallelism)
    for name, sql in sqls:  # warm plan cache, filter cache, pool
        service.execute(sql, name=name)

    infinity = float("inf")
    disarmed = [infinity] * len(sqls)
    disarmed_repeat = [infinity] * len(sqls)
    armed = [infinity] * len(sqls)
    spans_per_round = 0
    spans_dropped = 0
    for _ in range(rounds):
        _best_pass(service, sqls, None, disarmed)
        tracer = Tracer()
        _best_pass(service, sqls, tracer, armed)
        spans_per_round = len(tracer.spans())
        spans_dropped = tracer.dropped
        _best_pass(service, sqls, None, disarmed_repeat)

    disarmed_seconds = sum(disarmed)
    repeat_seconds = sum(disarmed_repeat)
    armed_seconds = sum(armed)
    baseline = min(disarmed_seconds, repeat_seconds)
    return {
        "workload": "tpcds_lite",
        "scale": scale,
        "queries": len(sqls),
        "rounds": rounds,
        "parallelism": parallelism,
        "disarmed_seconds": round(disarmed_seconds, 6),
        "disarmed_repeat_seconds": round(repeat_seconds, 6),
        "armed_seconds": round(armed_seconds, 6),
        # Armed cost over the best untraced pass: the <3% gate.
        "armed_overhead_fraction": round(
            armed_seconds / max(baseline, 1e-9) - 1.0, 6
        ),
        # Two identical untraced passes: the "unmeasurable" gate.  Any
        # disarmed instrumentation cost hides below this noise floor.
        "disarmed_noise_fraction": round(
            abs(repeat_seconds - disarmed_seconds) / max(baseline, 1e-9), 6
        ),
        "spans_per_round": spans_per_round,
        "spans_dropped": spans_dropped,
    }


def _measure_identity(scale: float) -> dict:
    """Per-query checksums, tracing on vs. off, serial and parallel."""
    database, _specs = tpcds_lite.build(scale=scale)
    sqls = tpcds_lite.query_sqls()
    levels = []
    for parallelism in _IDENTITY_LEVELS:
        service = QueryService(database, parallelism=parallelism)
        off = [
            round(_checksum(service.execute(sql, name=name).result), 6)
            for name, sql in sqls
        ]
        tracer = Tracer()
        on = [
            round(
                _checksum(
                    service.execute(sql, name=name, tracer=tracer).result
                ),
                6,
            )
            for name, sql in sqls
        ]
        levels.append({
            "parallelism": parallelism,
            "queries": len(sqls),
            "checksum_sum": round(sum(off), 6),
            "checksums_identical": off == on,
        })
    return {
        "levels": levels,
        "all_identical": all(level["checksums_identical"] for level in levels),
    }


def _sample_surfaces(scale: float, parallelism: int) -> dict:
    """One armed service: telemetry snapshot + explain_analyze render."""
    database, _specs = tpcds_lite.build(scale=scale)
    sqls = dict(tpcds_lite.query_sqls())
    service = QueryService(database, parallelism=parallelism)
    for name, sql in sqls.items():
        service.execute(sql, name=name)
    sample = service.explain_analyze(sqls[_SAMPLE_QUERY], name=_SAMPLE_QUERY)
    return {
        "telemetry": service.telemetry_snapshot(),
        "explain_analyze_query": _SAMPLE_QUERY,
        "explain_analyze_sample": sample,
    }


def run_trace_overhead(
    scale: float = DEFAULT_SCALE,
    rounds: int = 9,
    parallelism: int = DEFAULT_PARALLELISM,
) -> dict:
    """Run all three sections; returns a JSON-ready payload."""
    return {
        "experiment": "trace-overhead",
        "cpu_cores": available_cores(),
        "overhead": _measure_overhead(scale, rounds, parallelism),
        "identity": _measure_identity(scale),
        "surfaces": _sample_surfaces(scale, parallelism),
    }


def write_trace_overhead_report(payload: dict, path: str | Path) -> Path:
    """Write the trace-overhead payload as JSON (the in-repo artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
