"""Turn workload runs into the paper's figures and tables.

Each function returns plain row dictionaries; ``render_table`` formats
them for terminal output.  The mapping to the paper:

* :func:`selectivity_groups` — the L/M/S split of Section 7.4
  (cheapest third of queries by baseline CPU = S, most expensive = L).
* :func:`figure8_rows` — normalized total CPU per (workload, group),
  Original vs BQO.
* :func:`figure9_rows` — normalized tuples output per operator class.
* :func:`figure10_rows` — per-query normalized CPU, most expensive
  first.
* :func:`table3_rows` — workload statistics.
* :func:`table4_rows` — same-plan bitvector on/off comparison.
"""

from __future__ import annotations

import os

from repro.bench.harness import WorkloadResult
from repro.query.spec import QuerySpec
from repro.storage.database import Database

GROUPS = ("S", "M", "L")


def available_cores() -> int:
    """Usable cores for this process (the number every experiment
    payload records, and speedup gates compare against)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


def selectivity_groups(
    result: WorkloadResult, base_pipeline: str = "original"
) -> dict[str, str]:
    """Partition queries into S / M / L thirds by baseline CPU."""
    queries = result.queries()
    ordered = sorted(
        queries, key=lambda q: result.run(q, base_pipeline).metered_cpu
    )
    n = len(ordered)
    cut_s = (n + 2) // 3
    cut_m = (2 * n + 2) // 3
    groups: dict[str, str] = {}
    for index, query in enumerate(ordered):
        if index < cut_s:
            groups[query] = "S"
        elif index < cut_m:
            groups[query] = "M"
        else:
            groups[query] = "L"
    return groups


def figure8_rows(
    result: WorkloadResult,
    base_pipeline: str = "original",
    new_pipeline: str = "bqo",
) -> list[dict]:
    """Total CPU by selectivity group, normalized by the baseline total."""
    groups = selectivity_groups(result, base_pipeline)
    baseline_total = result.total_cpu(base_pipeline) or 1.0
    rows = []
    for group in GROUPS:
        members = [q for q, g in groups.items() if g == group]
        base_cpu = sum(result.run(q, base_pipeline).metered_cpu for q in members)
        new_cpu = sum(result.run(q, new_pipeline).metered_cpu for q in members)
        rows.append(
            {
                "workload": result.workload,
                "group": group,
                "queries": len(members),
                "original": base_cpu / baseline_total,
                "bqo": new_cpu / baseline_total,
            }
        )
    rows.append(
        {
            "workload": result.workload,
            "group": "total",
            "queries": len(groups),
            "original": 1.0,
            "bqo": result.total_cpu(new_pipeline) / baseline_total,
        }
    )
    return rows


def figure9_rows(
    result: WorkloadResult,
    base_pipeline: str = "original",
    new_pipeline: str = "bqo",
) -> list[dict]:
    """Tuples output per operator class, normalized by baseline total."""
    base = result.total_tuples_by_kind(base_pipeline)
    new = result.total_tuples_by_kind(new_pipeline)
    baseline_total = sum(base.values()) or 1
    rows = []
    for kind in ("leaf", "join", "other"):
        rows.append(
            {
                "workload": result.workload,
                "operator": kind,
                "original": base.get(kind, 0) / baseline_total,
                "bqo": new.get(kind, 0) / baseline_total,
            }
        )
    rows.append(
        {
            "workload": result.workload,
            "operator": "total",
            "original": 1.0,
            "bqo": sum(new.values()) / baseline_total,
        }
    )
    return rows


def figure10_rows(
    result: WorkloadResult,
    base_pipeline: str = "original",
    new_pipeline: str = "bqo",
    top: int = 60,
) -> list[dict]:
    """Per-query normalized CPU, sorted by baseline cost descending."""
    queries = sorted(
        result.queries(),
        key=lambda q: result.run(q, base_pipeline).metered_cpu,
        reverse=True,
    )[:top]
    max_cpu = max(
        (result.run(q, base_pipeline).metered_cpu for q in queries), default=1.0
    ) or 1.0
    rows = []
    for query in queries:
        base_run = result.run(query, base_pipeline)
        new_run = result.run(query, new_pipeline)
        rows.append(
            {
                "query": query,
                "original": base_run.metered_cpu / max_cpu,
                "bqo": new_run.metered_cpu / max_cpu,
                "speedup": (
                    base_run.metered_cpu / new_run.metered_cpu
                    if new_run.metered_cpu > 0
                    else float("inf")
                ),
            }
        )
    return rows


def table3_rows(
    workloads: list[tuple[str, Database, list[QuerySpec]]]
) -> list[dict]:
    """Workload statistics (the paper's Table 3)."""
    rows = []
    for name, database, queries in workloads:
        joins = [len(spec.join_predicates) for spec in queries]
        rows.append(
            {
                "workload": name,
                "tables": len(database.table_names),
                "total_rows": database.total_rows(),
                "queries": len(queries),
                "joins_avg": sum(joins) / max(1, len(joins)),
                "joins_max": max(joins, default=0),
            }
        )
    return rows


def table4_rows(
    result: WorkloadResult,
    with_filters: str = "original",
    without_filters: str = "original_nobv",
    improvement_threshold: float = 0.2,
) -> list[dict]:
    """Appendix A's Table 4: same plan with vs without bitvectors.

    ``CPU ratio`` is total CPU with filters divided by without;
    ``improved``/``regressed`` count queries whose CPU moved by more
    than the threshold in either direction.
    """
    queries = result.queries()
    cpu_with = result.total_cpu(with_filters)
    cpu_without = result.total_cpu(without_filters) or 1.0
    with_bitvectors = sum(
        1 for q in queries if result.run(q, with_filters).num_filters_created > 0
    )
    improved = 0
    regressed = 0
    for query in queries:
        cpu_on = result.run(query, with_filters).metered_cpu
        cpu_off = result.run(query, without_filters).metered_cpu or 1.0
        ratio = cpu_on / cpu_off
        if ratio < 1.0 - improvement_threshold:
            improved += 1
        elif ratio > 1.0 + improvement_threshold:
            regressed += 1
    total = max(1, len(queries))
    return [
        {
            "workload": result.workload,
            "cpu_ratio": cpu_with / cpu_without,
            "queries_with_filters": with_bitvectors / total,
            "improved": improved / total,
            "regressed": regressed / total,
        }
    ]


def render_table(rows: list[dict], title: str | None = None) -> str:
    """Format row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(fmt(row[column])) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(fmt(row[column]).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
