"""Succinct-filter experiment: packed rank/select structures vs. dense.

Four measurements, one artifact (``BENCH_succinct_filters.json``):

* **membership footprint** — an :class:`~repro.filters.exact.ExactFilter`
  over a sparse multi-column code domain stores its member table as a
  packed bitvector (1 bit per domain slot plus the ~3% rank directory)
  instead of the dense bool table (8 bits per slot) the seed engine
  kept.  The headline ``footprint_ratio`` is dense-over-packed — the
  acceptance gate requires at least 6x.
* **probe throughput** — word-probe (``Bitvector.get``) vs. bool
  fancy-indexing at a cache-spilling domain, interleaved best-of-N.
  ``probe_throughput_ratio`` is packed-over-bool (>= 0.9 gate: the 8x
  memory win must not cost meaningful probe speed where it applies).
* **cache residency** — how many member tables of the measured geometry
  fit a fixed memory budget in each representation; the succinct form
  keeps ~8x more filters hot in the cross-query filter cache.
* **engine identity** — a selective workload large enough to take the
  bitmap-selection path runs on the lazy engine (serial and parallel)
  and on the eager baseline; checksums must be identical, and the run
  reports the selection-state bytes actually created vs. the dense
  int64 vectors they replace.

CLI::

    python -m repro.bench --experiment succinct-filters \
        --output BENCH_succinct_filters.json
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import available_cores
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.filters.exact import ExactFilter
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.table import Table
from repro.succinct import Bitvector

# Membership section: two key columns of this many distinct values each
# make a sparse combined code domain of KEY_DOMAIN**2 slots.
DEFAULT_KEY_DOMAIN = 2_048
DEFAULT_BUILD_ROWS = 300_000

# Probe-throughput section: the domain must spill the last-level cache
# for the packed representation's bandwidth advantage to show; below
# ~2^24 the dense bool table wins on numpy per-op overhead (which is
# exactly why ExactFilter keeps a small decoded probe view there).
DEFAULT_PROBE_DOMAIN = 1 << 25
DEFAULT_PROBES = 1 << 20

# Engine-identity section: the fact table must exceed the engine's
# bitmap-selection floor (repro.engine.relation._BITMAP_MIN_ROWS) so
# scan/filter selections actually take the packed path.
DEFAULT_FACT_ROWS = 400_000

DEFAULT_BUDGET_BYTES = 8 << 20


def _membership_footprint(
    key_domain: int, build_rows: int, seed: int = 5
) -> dict:
    """Packed vs. dense-bool member-table bytes for one exact filter."""
    rng = np.random.default_rng(seed)
    columns = [
        rng.integers(0, key_domain, build_rows),
        rng.integers(0, key_domain, build_rows),
    ]
    built = ExactFilter.build(columns)
    info = built.describe()
    table = built._member_table
    if table is None:
        raise RuntimeError(
            "membership benchmark geometry no longer builds a packed "
            f"member table: {info}"
        )
    # Force the rank directory so the packed number is the honest
    # steady-state footprint, directory overhead included.
    table.rank1(np.array([table.num_bits - 1], dtype=np.int64))
    packed_bytes = table.nbytes + table.directory_nbytes
    dense_bytes = table.num_bits  # the seed's np.bool_ table: 1 byte/slot
    return {
        "key_domain_per_column": key_domain,
        "build_rows": build_rows,
        "member_table_bits": table.num_bits,
        "member_count": table.count(),
        "packed_bytes": int(packed_bytes),
        "directory_bytes": int(table.directory_nbytes),
        "dense_bool_bytes": int(dense_bytes),
        "footprint_ratio": round(dense_bytes / packed_bytes, 3),
        "filter_resident_bytes": int(built.resident_bytes),
        "mode": info["mode"],
    }


def _probe_throughput(
    domain: int, probes: int, rounds: int, seed: int = 9
) -> dict:
    """Interleaved best-of-N probe timings, packed vs. dense bool."""
    rng = np.random.default_rng(seed)
    mask = rng.random(domain) < 0.3
    packed = Bitvector.from_mask(mask)
    positions = rng.integers(0, domain, probes)
    # Warm both paths (first packed probe may build nothing, but page
    # everything in regardless).
    reference = mask[positions]
    if not np.array_equal(packed.get(positions), reference):
        raise RuntimeError("packed probe disagrees with bool table")
    best = {"bool": float("inf"), "packed": float("inf")}
    for _ in range(rounds):
        started = time.perf_counter()
        mask[positions]
        best["bool"] = min(best["bool"], time.perf_counter() - started)
        started = time.perf_counter()
        packed.get(positions)
        best["packed"] = min(best["packed"], time.perf_counter() - started)
    bool_rate = probes / max(best["bool"], 1e-12)
    packed_rate = probes / max(best["packed"], 1e-12)
    return {
        "domain_bits": domain,
        "probes": probes,
        "rounds": rounds,
        "bool_seconds": round(best["bool"], 6),
        "packed_seconds": round(best["packed"], 6),
        "bool_probes_per_second": round(bool_rate),
        "packed_probes_per_second": round(packed_rate),
        "probe_throughput_ratio": round(packed_rate / bool_rate, 3),
    }


def _cache_residency(footprint: dict, budget_bytes: int) -> dict:
    """Member tables of the measured geometry that fit a fixed budget."""
    packed = footprint["packed_bytes"]
    dense = footprint["dense_bool_bytes"]
    return {
        "budget_bytes": budget_bytes,
        "filters_resident_packed": budget_bytes // packed,
        "filters_resident_dense": budget_bytes // dense,
        "residency_ratio": round(
            (budget_bytes // packed) / max(budget_bytes // dense, 1), 2
        ),
    }


def _identity_database(rows: int, seed: int = 11) -> tuple[Database, list[str]]:
    """A selective scan + filtered join over one fact table, with the
    fact key shuffled so neither zone pruning nor the clustered band
    search trivializes the row-filter paths under test."""
    rng = np.random.default_rng(seed)
    domain = max(rows // 20, 1)
    keys = rng.integers(0, domain, rows)
    values = (keys % 89).astype(np.float64) + 0.5
    database = Database("succinct_identity")
    database.add_table(
        Table.from_arrays("fact", {"f_key": keys, "f_val": values}),
        validate_key=False,
    )
    database.add_table(
        Table.from_arrays("dim", {"d_key": np.arange(domain)}, key=("d_key",))
    )
    low = int(domain * 0.2)
    high = int(domain * 0.6)
    sqls = [
        "SELECT COUNT(*) AS cnt, SUM(f.f_val) AS rev "
        f"FROM fact f WHERE f.f_key BETWEEN {low} AND {high}",
        "SELECT COUNT(*) AS cnt, SUM(f.f_val) AS rev "
        "FROM fact f, dim d WHERE f.f_key = d.d_key "
        f"AND d.d_key BETWEEN {low} AND {low + max(domain // 20, 1)}",
    ]
    return database, sqls


def _checksum(results) -> float:
    from repro.bench.harness import _checksum as harness_checksum

    return round(sum(harness_checksum(result) for result in results), 6)


def _engine_identity(rows: int, morsel_rows: int) -> dict:
    """Lazy (serial + parallel) vs. eager baseline: byte identity plus
    the selection-state accounting of the succinct path."""
    database, sqls = _identity_database(rows)
    plans = [
        optimize_query(
            database, parse_query(database, sql, f"sf_{i}"), "bqo"
        ).plan
        for i, sql in enumerate(sqls)
    ]
    configs = {
        "lazy_serial": dict(parallelism=1),
        "lazy_parallel": dict(parallelism=4),
        "eager_baseline": dict(parallelism=1, eager_materialization=True),
    }
    checksums: dict[str, float] = {}
    accounting: dict[str, dict] = {}
    for name, kwargs in configs.items():
        cache = BitvectorFilterCache(64)
        executor = Executor(
            database, filter_cache=cache, morsel_rows=morsel_rows, **kwargs
        )
        results = [executor.execute(plan) for plan in plans]
        checksums[name] = _checksum(results)
        selection = sum(r.metrics.selection_bytes for r in results)
        dense = sum(r.metrics.selection_bytes_dense for r in results)
        accounting[name] = {
            "selection_bytes": selection,
            "selection_bytes_dense": dense,
            "selection_ratio": round(selection / dense, 4) if dense else None,
            "filter_bytes_resident": cache.resident_bytes(),
            "filter_modes": cache.mode_summary(),
        }
    return {
        "fact_rows": rows,
        "queries": len(plans),
        "checksums": checksums,
        "checksums_identical": len(set(checksums.values())) == 1,
        "accounting": accounting,
    }


def run_succinct_filters(
    key_domain: int = DEFAULT_KEY_DOMAIN,
    build_rows: int = DEFAULT_BUILD_ROWS,
    probe_domain: int = DEFAULT_PROBE_DOMAIN,
    probes: int = DEFAULT_PROBES,
    fact_rows: int = DEFAULT_FACT_ROWS,
    morsel_rows: int = 16384,
    rounds: int = 7,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
) -> dict:
    """Run all four sections and assemble the artifact payload."""
    footprint = _membership_footprint(key_domain, build_rows)
    throughput = _probe_throughput(probe_domain, probes, rounds)
    residency = _cache_residency(footprint, budget_bytes)
    identity = _engine_identity(fact_rows, morsel_rows)
    lazy = identity["accounting"]["lazy_serial"]
    return {
        "experiment": "succinct_filters",
        "cpu_cores": available_cores(),
        "membership_footprint": footprint,
        "probe_throughput": throughput,
        "cache_residency": residency,
        "engine_identity": identity,
        # Headline gates (benchmarks/test_succinct_filters.py + CI).
        "footprint_ratio": footprint["footprint_ratio"],
        "probe_throughput_ratio": throughput["probe_throughput_ratio"],
        "checksums_identical": identity["checksums_identical"],
        "selection_bytes": lazy["selection_bytes"],
        "selection_bytes_dense": lazy["selection_bytes_dense"],
    }


def write_succinct_report(payload: dict, path: str | Path) -> Path:
    """Write the payload as JSON (the in-repo perf artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
