"""Overload benchmark: graceful shedding under load beyond capacity.

Closed-loop load generation against the admission-controlled
:class:`~repro.service.AsyncQueryService`: ``factor × max_concurrency``
clients per level, each re-issuing star-workload queries back-to-back
(a shed client backs off by the returned retry hint).  Levels at 1×,
4×, and 16× capacity answer the overload questions that matter for a
serving tier:

* **Latency stays predictable.**  Admitted-query p50/p99 must stay
  within the deadline at every level — queued queries consume their
  deadline while waiting and are shed instead of served late.
* **Sheds are cheap.**  A refusal is pure bookkeeping; its p99 must be
  far below one query's service time (the 10 ms gate in
  ``tools/check_overload.py``), and every shed carries a retry-after
  hint.
* **Goodput holds.**  Successful answers per second at 16× offered
  load must stay within a whisker of the 1× level — overload cannot be
  allowed to melt throughput (the classic congestion-collapse failure
  of unbounded queues).
* **Answers stay right.**  Every admitted answer is checksummed
  against a serial oracle; load never changes results.

Used by ``benchmarks/test_overload.py`` (loose, CI-noise tolerant) and
by the CLI::

    python -m repro.bench --experiment overload --output BENCH_overload.json

The committed artifact carries the tight numbers from a quiet machine
and is gated by ``tools/check_overload.py`` in tier-1.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.bench.harness import _checksum
from repro.bench.reporting import available_cores
from repro.bench.scaling import star_workload_sqls
from repro.errors import QueryShed, QueryTimeout
from repro.service import AdmissionConfig, AsyncQueryService, QueryService
from repro.workloads import star

DEFAULT_SCALE = 1.0
DEFAULT_CONCURRENCY = 4
DEFAULT_FACTORS = (1, 4, 16)
DEFAULT_LEVEL_SECONDS = 2.0
#: Deadline headroom over the calibrated mean service time.  Generous
#: enough that 1× traffic never times out, tight enough that a 16×
#: backlog cannot hide behind the queue.
_DEADLINE_MULTIPLIER = 25.0
_DEADLINE_FLOOR_SECONDS = 0.25
#: Cap on how long a shed client backs off.  High enough that a shed
#: client genuinely yields the machine (shed-handling churn would
#: otherwise eat goodput on small hosts), low enough that offered load
#: stays far beyond capacity at 16×.
_MAX_BACKOFF_SECONDS = 0.25


def _quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(q * len(ordered) + 0.999999) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


def _calibrate(database, sqls: list[str]) -> tuple[dict[str, float], float]:
    """Serial oracle checksums plus the warm mean service time."""
    service = QueryService(database)
    oracle: dict[str, float] = {}
    for sql in sqls:
        oracle[sql] = _checksum(service.execute(sql).result)
    started = time.perf_counter()
    for sql in sqls:
        service.execute(sql)
    mean_service = (time.perf_counter() - started) / len(sqls)
    service.close()
    return oracle, mean_service


async def _client(
    service: AsyncQueryService,
    sqls: list[str],
    oracle: dict[str, float],
    client_index: int,
    deadline_seconds: float,
    stop_at: float,
    record: dict,
) -> None:
    """One closed-loop client: issue, measure, back off on shed, repeat."""
    offset = client_index
    while time.perf_counter() < stop_at:
        sql = sqls[offset % len(sqls)]
        offset += 1
        started = time.perf_counter()
        try:
            result = await service.execute(
                sql,
                name=f"load_c{client_index}_{offset}",
                client=f"client_{client_index}",
                deadline_seconds=deadline_seconds,
            )
        except QueryShed as shed:
            record["shed_latencies"].append(time.perf_counter() - started)
            record["sheds_by_reason"][shed.reason] = (
                record["sheds_by_reason"].get(shed.reason, 0) + 1
            )
            if shed.retry_after is None:
                record["sheds_without_hint"] += 1
            backoff = min(shed.retry_after or 0.001, _MAX_BACKOFF_SECONDS)
            await asyncio.sleep(backoff)
        except QueryTimeout:
            record["timeouts"] += 1
        else:
            record["admitted_latencies"].append(
                time.perf_counter() - started
            )
            if _checksum(result.result) != oracle[sql]:
                record["checksum_mismatches"] += 1


async def _run_level(
    database,
    sqls: list[str],
    oracle: dict[str, float],
    factor: int,
    max_concurrency: int,
    deadline_seconds: float,
    level_seconds: float,
) -> dict:
    """One load level: ``factor × max_concurrency`` closed-loop clients."""
    config = AdmissionConfig(queue_capacity=2 * max_concurrency)
    record = {
        "admitted_latencies": [],
        "shed_latencies": [],
        "sheds_by_reason": {},
        "sheds_without_hint": 0,
        "timeouts": 0,
        "checksum_mismatches": 0,
    }
    async with AsyncQueryService(
        database,
        max_concurrency=max_concurrency,
        admission=config,
        parallelism=1,
    ) as service:
        # Warm the plan/filter caches and the service-time EWMA so the
        # timed window measures steady state, not cold compilation.
        for sql in sqls:
            await service.execute(sql, deadline_seconds=deadline_seconds)
        clients = factor * max_concurrency
        started = time.perf_counter()
        stop_at = started + level_seconds
        await asyncio.gather(
            *(
                _client(
                    service, sqls, oracle, i, deadline_seconds, stop_at, record
                )
                for i in range(clients)
            )
        )
        elapsed = time.perf_counter() - started
        stats = service.admission_stats()

    admitted = record["admitted_latencies"]
    sheds = record["shed_latencies"]
    attempts = len(admitted) + len(sheds) + record["timeouts"]
    return {
        "factor": factor,
        "clients": clients,
        "elapsed_seconds": round(elapsed, 4),
        "attempts": attempts,
        "successes": len(admitted),
        "sheds": len(sheds),
        "timeouts": record["timeouts"],
        "shed_rate": round(len(sheds) / attempts, 4) if attempts else 0.0,
        "sheds_by_reason": record["sheds_by_reason"],
        "sheds_without_hint": record["sheds_without_hint"],
        "goodput_qps": round(len(admitted) / elapsed, 3),
        "admitted_p50_seconds": round(_quantile(admitted, 0.50), 6),
        "admitted_p99_seconds": round(_quantile(admitted, 0.99), 6),
        "shed_p99_seconds": round(_quantile(sheds, 0.99), 6),
        "checksum_mismatches": record["checksum_mismatches"],
        "checksums_identical": record["checksum_mismatches"] == 0,
        "max_queue_depth": stats.max_queue_depth,
        "mean_wait_seconds": round(
            stats.total_wait_seconds / stats.dispatched, 6
        )
        if stats.dispatched
        else 0.0,
    }


def run_overload(
    scale: float = DEFAULT_SCALE,
    max_concurrency: int = DEFAULT_CONCURRENCY,
    factors: tuple[int, ...] = DEFAULT_FACTORS,
    level_seconds: float = DEFAULT_LEVEL_SECONDS,
) -> dict:
    """Run the closed-loop overload levels; returns a JSON-ready payload."""
    database = star.build_database(scale=scale)
    sqls = star_workload_sqls()
    oracle, mean_service = _calibrate(database, sqls)
    deadline_seconds = max(
        _DEADLINE_FLOOR_SECONDS, _DEADLINE_MULTIPLIER * mean_service
    )
    levels = [
        asyncio.run(
            _run_level(
                database,
                sqls,
                oracle,
                factor,
                max_concurrency,
                deadline_seconds,
                level_seconds,
            )
        )
        for factor in factors
    ]
    return {
        "experiment": "overload",
        "cpu_cores": available_cores(),
        "workload": "star-20q",
        "scale": scale,
        "max_concurrency": max_concurrency,
        "queue_capacity": 2 * max_concurrency,
        "level_seconds": level_seconds,
        "calibrated_mean_service_seconds": round(mean_service, 6),
        "deadline_seconds": round(deadline_seconds, 6),
        "levels": levels,
    }


def write_overload_report(payload: dict, path: str | Path) -> Path:
    """Write the overload payload as JSON (the in-repo artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
