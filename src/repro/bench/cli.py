"""Command-line experiment runner.

Regenerates the paper's workload-level figures/tables without pytest::

    python -m repro.bench --workload tpcds --scale 0.15
    python -m repro.bench --workload all --scale 0.1 --pipelines original bqo dp

Prints Figure 8 (CPU by selectivity group), Figure 9 (tuples by
operator), Figure 10 (top queries), and Table 4 (filters on/off) for
each requested workload.

Beyond the paper figures, ``--experiment`` selects a named engine
experiment (see :data:`EXPERIMENTS` — the argparse help enumerates
them), each writing a JSON perf artifact the repo tracks over time::

    python -m repro.bench --experiment parallel-scaling \
        --output BENCH_parallel_scaling.json
    python -m repro.bench --experiment zonemap-pruning \
        --output BENCH_zonemap_pruning.json
"""

from __future__ import annotations

import argparse

from repro.bench.harness import run_workload
from repro.bench.reporting import (
    figure8_rows,
    figure9_rows,
    figure10_rows,
    render_table,
    table3_rows,
    table4_rows,
)
from repro.workloads import WORKLOADS

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's workload experiments.",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS) + ["all"],
        default="tpcds",
        help="which synthetic workload to run (default: tpcds)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="data scale factor (default: 0.15 for paper figures, "
        "1.0 for parallel-scaling)",
    )
    parser.add_argument(
        "--pipelines", nargs="+",
        default=["original", "bqo", "original_nobv"],
        help="pipelines to compare (default: original bqo original_nobv)",
    )
    parser.add_argument(
        "--top", type=int, default=15,
        help="queries shown in the Figure 10 table (default: 15)",
    )
    parser.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS),
        default="paper",
        help="which experiment to run: "
        + "; ".join(
            f"{name!r} = {entry.description}"
            for name, entry in sorted(EXPERIMENTS.items())
        ),
    )
    parser.add_argument(
        "--parallelism", type=int, nargs="+", default=None,
        help="worker counts for the parallel-scaling (default: 1 2 4), "
        "zonemap-pruning, and build-parallel (default: 1 4) experiments",
    )
    parser.add_argument(
        "--morsel-rows", type=int, default=16384,
        help="target rows per morsel for the engine experiments",
    )
    parser.add_argument(
        "--output", default=None,
        help="JSON artifact path (default: the experiment's canonical "
        "BENCH_*.json name)",
    )
    return parser


def _artifact_path(args) -> str:
    if args.output is not None:
        return args.output
    return EXPERIMENTS[args.experiment].artifact


def run_scaling(args) -> None:
    from repro.bench.scaling import run_parallel_scaling, write_scaling_report

    payload = run_parallel_scaling(
        scale=args.scale if args.scale is not None else 1.0,
        parallelism_levels=tuple(args.parallelism or (1, 2, 4)),
        morsel_rows=args.morsel_rows,
    )
    rows = [
        {
            "parallelism": level["parallelism"],
            "warm_seconds": level["warm_seconds"],
            "speedup": level["speedup"],
        }
        for level in payload["levels"]
    ]
    print(render_table(
        rows,
        f"\n=== parallel scaling — star-20q (scale {payload['scale']}, "
        f"{payload['cpu_cores']} cores, morsels of {payload['morsel_rows']}) ===",
    ))
    print(f"checksums identical: {payload['checksums_identical']}")
    path = write_scaling_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_build_parallel(args) -> None:
    from repro.bench.build_parallel import (
        DEFAULT_DIM_ROWS,
        DEFAULT_FACT_ROWS,
        run_build_parallel as run_experiment,
        write_build_parallel_report,
    )

    scale = args.scale if args.scale is not None else 1.0
    payload = run_experiment(
        dim_rows=max(int(DEFAULT_DIM_ROWS * scale), 1),
        fact_rows=max(int(DEFAULT_FACT_ROWS * scale), 1),
        parallelism_levels=tuple(args.parallelism or (1, 4)),
        morsel_rows=args.morsel_rows,
    )
    for kind, entry in payload["kinds"].items():
        rows = [
            {
                "parallelism": level["parallelism"],
                "build_s": level["build_seconds"],
                "total_s": level["total_seconds"],
                "build_speedup": level["build_speedup"],
                "partitioned": level["partitioned_builds"],
            }
            for level in entry["levels"]
        ]
        print(render_table(
            rows,
            f"\n=== parallel filter builds — {kind} "
            f"({payload['dim_rows']} dim rows, {payload['fact_rows']} fact "
            f"rows, {payload['cpu_cores']} cores) ===",
        ))
    print(f"results identical: {payload['results_identical']}")
    print(
        f"exact build-phase speedup at {payload['top_parallelism']} "
        f"workers: {payload['build_speedup_at_top']}x"
    )
    path = write_build_parallel_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_pruning(args) -> None:
    from repro.bench.pruning import (
        DEFAULT_ROWS,
        run_zonemap_pruning,
        write_pruning_report,
    )

    scale = args.scale if args.scale is not None else 1.0
    payload = run_zonemap_pruning(
        rows=max(int(DEFAULT_ROWS * scale), 1),
        parallelism_levels=tuple(args.parallelism or (1, 4)),
        morsel_rows=args.morsel_rows,
    )
    for layout, entry in payload["layouts"].items():
        rows = [
            {
                "parallelism": level["parallelism"],
                "zone_on_s": level["zone_on_seconds"],
                "zone_off_s": level["zone_off_seconds"],
                "speedup": level["speedup"],
                "skip_fraction": level["skip_fraction"],
            }
            for level in entry["levels"]
        ]
        print(render_table(
            rows,
            f"\n=== zone-map pruning — {layout} layout "
            f"({payload['rows']} rows, morsels of {payload['morsel_rows']}, "
            f"{payload['cpu_cores']} cores) ===",
        ))
    print(f"checksums identical: {payload['checksums_identical']}")
    print(
        f"clustered speedup {payload['clustered_speedup']}x at "
        f"{payload['clustered_skip_fraction'] * 100:.1f}% rows skipped; "
        f"shuffled overhead "
        f"{payload['shuffled_overhead_fraction'] * 100:+.1f}%"
    )
    path = write_pruning_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_plan_quality(args) -> None:
    from repro.bench.plan_quality import (
        DEFAULT_SCALE,
        run_plan_quality as run_experiment,
        write_plan_quality_report,
    )

    payload = run_experiment(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
    )
    for mode, report in payload["mode_reports"].items():
        rows = [
            {
                "query": entry["query"],
                "operators": entry["operators"],
                "median_q": entry["median_q_error"],
                "max_q": entry["max_q_error"],
            }
            for entry in report["per_query"]
        ]
        print(render_table(
            rows,
            f"\n=== plan quality — q-error per query, mode {mode!r} "
            f"(scale {payload['scale']}) ===",
        ))
        print(
            f"{mode}: median q-error {report['median_q_error']}, "
            f"p90 {report['p90_q_error']}, max {report['max_q_error']} "
            f"over {report['operators']} operators"
        )
    topk = payload["topk_early_exit"]
    print(
        f"top-k early exit: {topk['total_morsels_pruned']} morsels pruned, "
        f"answers identical: {topk['all_identical']}"
    )
    path = write_plan_quality_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_robustness(args) -> None:
    from repro.bench.robustness import (
        DEFAULT_SCALE,
        run_robustness as run_experiment,
        write_robustness_report,
    )

    payload = run_experiment(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
    )
    overhead = payload["deadline_overhead"]
    stress = payload["stress"]
    recovery = payload["recovery"]
    print(render_table(
        [
            {
                "scenario": "warm tpcds_lite",
                "baseline_s": overhead["baseline_seconds"],
                "armed_s": overhead["deadline_armed_seconds"],
                "overhead": f"{overhead['overhead_fraction'] * 100:+.2f}%",
                "identical": overhead["checksums_identical"],
            }
        ],
        "\n=== robustness — deadline-check overhead (warm path) ===",
    ))
    print(
        f"stress: {stress['enforced_timeouts']} enforced timeouts "
        f"({stress['shed_rate'] * 100:.0f}% shed), "
        f"{stress['degradations']} graceful degradations "
        f"({stress['degrade_rate'] * 100:.0f}% of the batch), "
        f"{stress['degraded_failures']} failures under degradation"
    )
    print(
        f"recovery: mean {recovery['mean_recovery_seconds'] * 1e3:.2f} ms, "
        f"max {recovery['max_recovery_seconds'] * 1e3:.2f} ms after "
        f"{recovery['chaos_rounds']} injected faults; oracle identical: "
        f"{recovery['answers_identical_to_serial_oracle']}"
    )
    path = write_robustness_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_succinct(args) -> None:
    from repro.bench.succinct import (
        run_succinct_filters,
        write_succinct_report,
    )

    payload = run_succinct_filters(morsel_rows=args.morsel_rows)
    footprint = payload["membership_footprint"]
    throughput = payload["probe_throughput"]
    residency = payload["cache_residency"]
    print(render_table(
        [
            {
                "section": "membership footprint",
                "packed": footprint["packed_bytes"],
                "dense": footprint["dense_bool_bytes"],
                "ratio": payload["footprint_ratio"],
            },
            {
                "section": "cache residency",
                "packed": residency["filters_resident_packed"],
                "dense": residency["filters_resident_dense"],
                "ratio": residency["residency_ratio"],
            },
        ],
        "\n=== succinct filters — packed vs. dense ===",
    ))
    print(
        f"probe throughput: packed {throughput['packed_probes_per_second']}/s "
        f"vs bool {throughput['bool_probes_per_second']}/s "
        f"(ratio {payload['probe_throughput_ratio']}x at "
        f"2^{throughput['domain_bits'].bit_length() - 1} bits)"
    )
    print(
        f"selection state: {payload['selection_bytes']} bytes resident vs "
        f"{payload['selection_bytes_dense']} dense int64"
    )
    print(f"checksums identical: {payload['checksums_identical']}")
    path = write_succinct_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_trace_overhead(args) -> None:
    from repro.bench.trace_overhead import (
        DEFAULT_PARALLELISM,
        DEFAULT_SCALE,
        run_trace_overhead as run_experiment,
        write_trace_overhead_report,
    )

    parallelism = (
        args.parallelism[0] if args.parallelism else DEFAULT_PARALLELISM
    )
    payload = run_experiment(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        parallelism=parallelism,
    )
    overhead = payload["overhead"]
    identity = payload["identity"]
    print(render_table(
        [
            {
                "scenario": "warm tpcds_lite (service)",
                "disarmed_s": overhead["disarmed_seconds"],
                "armed_s": overhead["armed_seconds"],
                "armed": f"{overhead['armed_overhead_fraction'] * 100:+.2f}%",
                "noise": f"{overhead['disarmed_noise_fraction'] * 100:.2f}%",
                "spans": overhead["spans_per_round"],
            }
        ],
        "\n=== trace overhead — tracer armed vs. off (warm path) ===",
    ))
    for level in identity["levels"]:
        print(
            f"parallelism {level['parallelism']}: checksums identical "
            f"(on vs. off): {level['checksums_identical']}"
        )
    telemetry = payload["surfaces"]["telemetry"]
    execute = telemetry.get("execute_seconds", {})
    if execute.get("count"):
        print(
            f"telemetry: execute_seconds p50 {execute['p50'] * 1e3:.2f} ms, "
            f"p95 {execute['p95'] * 1e3:.2f} ms over {execute['count']} queries"
        )
    path = write_trace_overhead_report(payload, _artifact_path(args))
    print(f"wrote {path}")


def run_overload(args) -> None:
    from repro.bench.overload import (
        DEFAULT_SCALE,
        run_overload as run_experiment,
        write_overload_report,
    )

    payload = run_experiment(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
    )
    rows = [
        {
            "load": f"{level['factor']}x",
            "clients": level["clients"],
            "goodput_qps": level["goodput_qps"],
            "p50_ms": round(level["admitted_p50_seconds"] * 1e3, 2),
            "p99_ms": round(level["admitted_p99_seconds"] * 1e3, 2),
            "shed_rate": f"{level['shed_rate'] * 100:.1f}%",
            "shed_p99_ms": round(level["shed_p99_seconds"] * 1e3, 3),
            "identical": level["checksums_identical"],
        }
        for level in payload["levels"]
    ]
    print(render_table(
        rows,
        f"\n=== overload — closed-loop load vs. capacity "
        f"({payload['max_concurrency']} slots, queue of "
        f"{payload['queue_capacity']}, deadline "
        f"{payload['deadline_seconds'] * 1e3:.0f} ms) ===",
    ))
    base = payload["levels"][0]["goodput_qps"]
    peak = payload["levels"][-1]
    if base:
        print(
            f"goodput at {peak['factor']}x load: "
            f"{peak['goodput_qps'] / base * 100:.1f}% of the 1x level"
        )
    path = write_overload_report(payload, _artifact_path(args))
    print(f"wrote {path}")


class _Experiment:
    """One registry entry: help text, artifact default, and dispatch."""

    __slots__ = ("description", "artifact", "runner")

    def __init__(self, description: str, artifact: str | None, runner) -> None:
        self.description = description
        self.artifact = artifact
        self.runner = runner


# Named experiments.  The argparse help/error text AND main()'s
# dispatch are both driven from this registry, so an unknown
# --experiment fails with the full list of valid names, and a
# registered experiment can never silently fall through to the wrong
# runner.  ``runner=None`` marks the default paper-figures path.
EXPERIMENTS: dict[str, _Experiment] = {
    "paper": _Experiment(
        "the paper's figures/tables (default)", None, None
    ),
    "parallel-scaling": _Experiment(
        "morsel-driven parallel execution vs. serial",
        "BENCH_parallel_scaling.json",
        run_scaling,
    ),
    "zonemap-pruning": _Experiment(
        "zone-map morsel skipping on clustered vs. shuffled layouts",
        "BENCH_zonemap_pruning.json",
        run_pruning,
    ),
    "build-parallel": _Experiment(
        "partitioned bitvector filter builds vs. serial (build phase)",
        "BENCH_build_parallel.json",
        run_build_parallel,
    ),
    "plan-quality": _Experiment(
        "estimator q-error vs. observed cardinalities, full vs. shallow",
        "BENCH_plan_quality.json",
        run_plan_quality,
    ),
    "robustness": _Experiment(
        "deadline-check overhead, shed/degrade rates, fault recovery",
        "BENCH_robustness.json",
        run_robustness,
    ),
    "trace-overhead": _Experiment(
        "structured tracing armed vs. off: overhead and answer identity",
        "BENCH_trace_overhead.json",
        run_trace_overhead,
    ),
    "overload": _Experiment(
        "closed-loop load beyond capacity: shed rate, goodput, latency",
        "BENCH_overload.json",
        run_overload,
    ),
    "succinct-filters": _Experiment(
        "packed rank/select member tables and bitmap selections vs. dense",
        "BENCH_succinct_filters.json",
        run_succinct,
    ),
}


def run_one(name: str, scale: float, pipelines: list[str], top: int) -> None:
    module = WORKLOADS[name]
    database, queries = module.build(scale=scale)
    print(render_table(
        table3_rows([(name, database, queries)]),
        f"\n=== {name} (scale {scale}) — Table 3 statistics ===",
    ))
    result = run_workload(name, database, queries, pipelines=tuple(pipelines))
    if "original" in pipelines and "bqo" in pipelines:
        print()
        print(render_table(figure8_rows(result), "Figure 8 — CPU by group"))
        print()
        print(render_table(figure9_rows(result), "Figure 9 — tuples by operator"))
        print()
        print(render_table(
            [
                {
                    "query": r["query"],
                    "original": round(r["original"], 4),
                    "bqo": round(r["bqo"], 4),
                    "speedup": round(r["speedup"], 2),
                }
                for r in figure10_rows(result, top=top)
            ],
            "Figure 10 — top queries",
        ))
    if "original" in pipelines and "original_nobv" in pipelines:
        print()
        print(render_table(table4_rows(result), "Table 4 — filters on/off"))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runner = EXPERIMENTS[args.experiment].runner
    if runner is not None:
        runner(args)
        return 0
    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    scale = args.scale if args.scale is not None else 0.15
    for name in names:
        run_one(name, scale, list(args.pipelines), args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
