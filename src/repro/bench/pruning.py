"""Zone-map pruning experiment: morsel-level data skipping vs. layout.

Zone maps skip work only where value ranges correlate with storage
order, so the experiment runs one selective workload over two physical
layouts of the same data:

* **clustered** — the fact table is sorted by its key, so a selective
  band predicate (and the bitvector filter a selective dimension
  induces) touches a handful of morsels and zone maps prune the rest;
* **shuffled** — the same rows in random order: every morsel spans the
  full key range, nothing can be pruned, and the run measures the pure
  overhead of consulting the synopses.

Both layouts execute with ``zone_maps`` on and off at each requested
parallelism level; answers must be byte-identical everywhere (pruning
is conservative by construction — drift is a correctness bug).  Used by
``benchmarks/test_zonemap_pruning.py`` and by the CLI::

    python -m repro.bench --experiment zonemap-pruning \
        --output BENCH_zonemap_pruning.json

so the skipping trajectory accumulates in-repo as a JSON artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import available_cores
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.table import Table

DEFAULT_ROWS = 2_000_000

# The selective band: predicates and the dimension filter keep this
# fraction of the key domain, so a clustered layout can prune ~1 - BAND
# of its morsels.
_BAND_FRACTION = 0.05


def build_pruning_database(
    rows: int = DEFAULT_ROWS, layout: str = "clustered", seed: int = 7
) -> Database:
    """One fact + one dimension over a shared integer key domain.

    ``layout`` is ``"clustered"`` (fact sorted by key — the layout a
    date-partitioned decision-support fact table naturally has) or
    ``"shuffled"`` (identical rows, random order).  Measures are a
    deterministic function of the key so both layouts hold exactly the
    same multiset of rows and every aggregate must agree.
    """
    if layout not in ("clustered", "shuffled"):
        raise ValueError(f"unknown layout {layout!r}")
    rng = np.random.default_rng(seed)
    domain = max(rows // 20, 1)
    keys = rng.integers(0, domain, rows)
    if layout == "clustered":
        keys = np.sort(keys)
    values = (keys % 97).astype(np.float64) + 0.25
    database = Database(f"pruning_{layout}")
    database.add_table(
        Table.from_arrays("fact", {"f_key": keys, "f_val": values}),
        validate_key=False,
    )
    database.add_table(
        Table.from_arrays("dim", {"d_key": np.arange(domain)}, key=("d_key",))
    )
    return database


def pruning_workload_sqls(rows: int = DEFAULT_ROWS) -> list[str]:
    """A selective band scan and a band join (bitvector-filtered)."""
    domain = max(rows // 20, 1)
    low = int(domain * 0.50)
    high = low + max(int(domain * _BAND_FRACTION), 1) - 1
    return [
        # Predicate pruning: the scan's BETWEEN can discard whole
        # morsels on a clustered layout.
        "SELECT COUNT(*) AS cnt, SUM(f.f_val) AS rev "
        f"FROM fact f WHERE f.f_key BETWEEN {low} AND {high}",
        # Filter pruning: the selective dimension induces a bitvector
        # on the fact scan; the filter's key bounds cover only the band,
        # so zone maps skip morsels before the probe runs.
        "SELECT COUNT(*) AS cnt, SUM(f.f_val) AS rev "
        "FROM fact f, dim d WHERE f.f_key = d.d_key "
        f"AND d.d_key BETWEEN {low} AND {high}",
    ]


def _checksum(results) -> float:
    from repro.bench.harness import _checksum as harness_checksum

    return round(sum(harness_checksum(result) for result in results), 6)


def _best_of_interleaved(
    executors: dict[bool, Executor], plans: list, rounds: int
) -> dict[bool, float]:
    """Best-of-N warm wall clock per executor, rounds interleaved.

    Alternating on/off passes inside each round exposes both
    configurations to the same scheduler/frequency drift, so their
    *ratio* — the quantity the overhead and speedup bars assert on —
    is far more stable than two sequentially timed blocks.
    """
    best = {key: float("inf") for key in executors}
    for _ in range(rounds):
        for key, executor in executors.items():
            started = time.perf_counter()
            for plan in plans:
                executor.execute(plan)
            best[key] = min(best[key], time.perf_counter() - started)
    return best


def run_zonemap_pruning(
    rows: int = DEFAULT_ROWS,
    parallelism_levels: tuple[int, ...] = (1, 4),
    morsel_rows: int = 16384,
    rounds: int = 5,
) -> dict:
    """Measure warm wall-clock with zone maps on vs. off, per layout.

    Every (layout, parallelism, zone_maps) combination runs the same
    optimized plans warm (one untimed pass builds dictionaries, filters,
    and — with zone maps on — the synopses) and reports best-of-N
    seconds plus the pruning counters of one steady-state pass.
    Convenience top-level fields summarize the parallelism-1 result:
    ``clustered_speedup`` (off/on), ``clustered_skip_fraction`` (rows
    skipped over rows eligible), and ``shuffled_overhead_fraction``
    (on/off - 1 — the cost of consulting synopses that never prune).
    """
    layouts: dict[str, dict] = {}
    for layout in ("clustered", "shuffled"):
        database = build_pruning_database(rows, layout)
        plans = [
            optimize_query(
                database, parse_query(database, sql, f"{layout}_{i}"), "bqo"
            ).plan
            for i, sql in enumerate(pruning_workload_sqls(rows))
        ]
        eligible_rows = database.table("fact").num_rows * len(plans)
        levels = []
        checksums: list[float] = []
        for parallelism in parallelism_levels:
            executors = {
                zone_maps: Executor(
                    database,
                    filter_cache=BitvectorFilterCache(64),
                    parallelism=parallelism,
                    morsel_rows=morsel_rows,
                    zone_maps=zone_maps,
                )
                for zone_maps in (True, False)
            }
            counters: dict[bool, tuple[int, int]] = {}
            for zone_maps, executor in executors.items():
                warm = [executor.execute(plan) for plan in plans]
                checksums.append(_checksum(warm))
                counters[zone_maps] = (
                    sum(r.metrics.morsels_pruned for r in warm),
                    sum(r.metrics.rows_skipped for r in warm),
                )
            timings = _best_of_interleaved(executors, plans, rounds)
            morsels_pruned, rows_skipped = counters[True]
            levels.append(
                {
                    "parallelism": parallelism,
                    "zone_on_seconds": round(timings[True], 6),
                    "zone_off_seconds": round(timings[False], 6),
                    "speedup": round(
                        timings[False] / max(timings[True], 1e-9), 3
                    ),
                    "morsels_pruned": morsels_pruned,
                    "rows_skipped": rows_skipped,
                    "skip_fraction": round(
                        rows_skipped / max(eligible_rows, 1), 4
                    ),
                }
            )
        layouts[layout] = {
            "levels": levels,
            "eligible_rows": eligible_rows,
            "checksums": checksums,
            "checksums_identical": len(set(checksums)) == 1,
        }
    # Headline fields summarize the serial (parallelism=1) run wherever
    # it appears in the requested levels, falling back to the first
    # level so the artifact is always populated.
    def _serial_level(layout: str) -> dict:
        levels = layouts[layout]["levels"]
        return next(
            (level for level in levels if level["parallelism"] == 1),
            levels[0],
        )

    clustered_base = _serial_level("clustered")
    shuffled_base = _serial_level("shuffled")
    return {
        "experiment": "zonemap_pruning",
        "workload": "band-select + band-join over one fact table",
        "rows": rows,
        "band_fraction": _BAND_FRACTION,
        "morsel_rows": morsel_rows,
        "rounds": rounds,
        "parallelism_levels": list(parallelism_levels),
        "cpu_cores": available_cores(),
        "layouts": layouts,
        "clustered_speedup": clustered_base["speedup"],
        "clustered_skip_fraction": clustered_base["skip_fraction"],
        "shuffled_overhead_fraction": round(
            shuffled_base["zone_on_seconds"]
            / max(shuffled_base["zone_off_seconds"], 1e-9)
            - 1.0,
            4,
        ),
        "checksums_identical": all(
            entry["checksums_identical"] for entry in layouts.values()
        ),
    }


def write_pruning_report(payload: dict, path: str | Path) -> Path:
    """Write the pruning payload as JSON (the in-repo perf artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
