"""Parallel scaling experiment: morsel-driven execution vs. serial.

Replays the 20-query star workload (the same warm-plan setup as the
service-throughput and exec-hot-path benchmarks) through executors that
differ only in ``parallelism``, and reports warm wall-clock per level,
speedups, and answer checksums.  Checksums must be identical across
levels — morsel decomposition is order-preserving by construction, so
any drift is a correctness bug, not measurement noise.

Used by ``benchmarks/test_parallel_scaling.py`` (asserting the scaling
acceptance bar) and by the CLI::

    python -m repro.bench --experiment parallel-scaling \
        --output BENCH_parallel_scaling.json

so the perf trajectory accumulates in-repo as a JSON artifact.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

from repro.bench.reporting import available_cores
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query
from repro.workloads import star

_STAR_DIMENSIONS = {
    "c": ("customer c", "lo.lo_custkey = c.c_custkey", "c.c_region = 'ASIA'"),
    "s": ("supplier s", "lo.lo_suppkey = s.s_suppkey", "s.s_nation = 'NATION07'"),
    "p": ("part p", "lo.lo_partkey = p.p_partkey", "p.p_category = 'MFGR#1'"),
    "d": (
        "date_dim d",
        "lo.lo_orderdate = d.d_datekey",
        "d.d_year BETWEEN 1993 AND 1994",
    ),
}


def _template(dimension_keys: str, select_list: str) -> str:
    tables = ["lineorder lo"]
    conjuncts: list[str] = []
    for key in dimension_keys:
        table, join, predicate = _STAR_DIMENSIONS[key]
        tables.append(table)
        conjuncts.append(join)
        conjuncts.append(predicate)
    return (
        f"SELECT {select_list} FROM " + ", ".join(tables)
        + " WHERE " + " AND ".join(conjuncts)
    )


def star_workload_sqls() -> list[str]:
    """The 20-query star workload: every dimension subset, plus five
    repeat-shape queries with a different aggregate."""
    subsets = [
        "".join(combo)
        for size in range(1, 5)
        for combo in itertools.combinations("cspd", size)
    ]
    sqls = [
        _template(keys, "COUNT(*) AS cnt, SUM(lo.lo_revenue) AS rev")
        for keys in subsets
    ]
    sqls.extend(
        _template(keys, "SUM(lo.lo_quantity) AS qty")
        for keys in ("cs", "cp", "sd", "pd", "cspd")
    )
    assert len(sqls) == 20
    return sqls


def star_workload_plans(database) -> list:
    """The 20-query star workload, optimized once (warm plans)."""
    return [
        optimize_query(
            database, parse_query(database, sql, f"star_{i}"), "bqo"
        ).plan
        for i, sql in enumerate(star_workload_sqls())
    ]


def _workload_checksum(results) -> float:
    from repro.bench.harness import _checksum

    return round(sum(_checksum(result) for result in results), 6)


def _best_of(executor: Executor, plans: list, rounds: int) -> float:
    """Best-of-N warm wall clock (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for plan in plans:
            executor.execute(plan)
        best = min(best, time.perf_counter() - started)
    return best


def run_parallel_scaling(
    scale: float = 1.0,
    parallelism_levels: tuple[int, ...] = (1, 2, 4),
    morsel_rows: int = 16384,
    rounds: int = 5,
) -> dict:
    """Measure warm workload wall-clock at each parallelism level.

    Every level runs the same optimized plans against the same database
    with its own hot filter cache (one untimed warmup pass builds
    dictionaries and filters, and collects the answer checksum).
    Returns a JSON-ready payload; ``levels[i]["speedup"]`` is measured
    against the ``parallelism=1`` baseline.
    """
    database = star.build_database(scale=scale)
    plans = star_workload_plans(database)
    checksums: list[float] = []
    measured: list[tuple[int, float]] = []
    for parallelism in parallelism_levels:
        executor = Executor(
            database,
            filter_cache=BitvectorFilterCache(64),
            parallelism=parallelism,
            morsel_rows=morsel_rows,
        )
        warmup = [executor.execute(plan) for plan in plans]
        checksums.append(_workload_checksum(warmup))
        measured.append((parallelism, _best_of(executor, plans, rounds)))
    # Speedups anchor on the parallelism=1 level wherever it appears in
    # the requested list (falling back to the first level if serial was
    # not requested), so the artifact always reads as vs-serial.
    baseline_seconds = next(
        (seconds for parallelism, seconds in measured if parallelism == 1),
        measured[0][1],
    )
    levels = [
        {
            "parallelism": parallelism,
            "warm_seconds": round(seconds, 6),
            "speedup": round(baseline_seconds / max(seconds, 1e-9), 3),
        }
        for parallelism, seconds in measured
    ]
    return {
        "experiment": "parallel_scaling",
        "workload": "star-20q",
        "scale": scale,
        "queries": len(plans),
        "morsel_rows": morsel_rows,
        "rounds": rounds,
        "cpu_cores": available_cores(),
        "levels": levels,
        "checksums": checksums,
        "checksums_identical": len(set(checksums)) == 1,
    }


def write_scaling_report(payload: dict, path: str | Path) -> Path:
    """Write the scaling payload as JSON (the in-repo perf artifact)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
