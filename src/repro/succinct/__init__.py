"""Succinct rank/select bitvectors (vectorized numpy implementation).

The package implements the word-packed bitvector with an interleaved
two-level rank directory described in "Theory Meets Practice for Bit
Vectors Supporting Rank and Select" (Kurpicz et al., PAPERS.md) — the
structure ROADMAP item 4 names as the replacement for the engine's two
fattest resident artifacts: the exact filter's bool membership table
(8 bits/slot -> 1 bit/slot) and int64 selection vectors (64 bits per
surviving row -> 1 bit per base row).
"""

from repro.succinct.bitvector import Bitvector, popcount

__all__ = ["Bitvector", "popcount"]
