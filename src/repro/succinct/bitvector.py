"""Uint64-word-packed bitvector with vectorized rank and select.

Layout (Kurpicz et al.'s "flat" design, adapted to numpy batch ops):

::

    words       uint64[ceil(n/64)]   the bits, little-endian bit order
                                     (bit i lives in words[i >> 6] at
                                     position i & 63 — the same order
                                     np.packbits(bitorder="little")
                                     produces and the Bloom filter uses)
    directory   per 512-bit block (8 words):
                  _block_rel  uint16   ones before the block, relative
                                       to its superblock start
                per 65536-bit superblock (128 blocks):
                  _super_cum  int64    ones before the superblock

    overhead    16/512 + 64/65536  ~= 3.2% of the words

Every operation is a batch operation over a positions/ranks array:

``rank1(p)``
    ones strictly before position ``p``: superblock count + block count
    + a popcount of the (at most 8) masked block words, all gathered as
    one ``(n, 8)`` matrix — no per-query loops.
``select1(k)``
    position of the ``k``-th one (0-based).  Binary search over the
    superblock counts, a vectorized scan of the 128 sampled block
    counts inside the superblock, then popcount cascades word -> byte
    -> a 256x8 bit-position lookup table.
``get(p)``
    word gather + shift + mask membership probe.

Popcounts use ``np.bitwise_count`` (hardware popcnt under the hood);
a byte-LUT fallback keeps older numpy working.

The bit tail past ``num_bits`` in the last word is always zero — every
constructor enforces it, so word-level AND/OR/popcount never see stray
bits.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
BLOCK_WORDS = 8  # 512-bit rank blocks
BLOCK_BITS = BLOCK_WORDS * WORD_BITS
SUPER_BLOCKS = 128  # blocks per superblock -> 65536 bits
SUPER_BITS = SUPER_BLOCKS * BLOCK_BITS

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)
_EMPTY_I64 = np.array([], dtype=np.int64)

if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (int64 result)."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - numpy >= 2.0 always has bitwise_count
    _BYTE_POPCOUNT = np.array(
        [bin(v).count("1") for v in range(256)], dtype=np.uint8
    )

    def popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        counts = _BYTE_POPCOUNT[as_bytes].astype(np.int64)
        return counts.reshape(*words.shape, 8).sum(axis=-1)


def _build_select_in_byte() -> np.ndarray:
    """``table[v, k]`` = index of the ``k``-th (0-based) set bit of byte
    ``v`` — the last rung of the select cascade."""
    bits = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
    )
    table = np.zeros((256, 8), dtype=np.uint8)
    for value in range(256):
        positions = np.flatnonzero(bits[value])
        table[value, : len(positions)] = positions
    return table


_SELECT_IN_BYTE = _build_select_in_byte()
_BYTE_SHIFTS = (np.arange(8, dtype=np.uint64) * np.uint64(8))[None, :]


class Bitvector:
    """An immutable-length packed bitvector supporting batch
    rank/select/membership and word-level combination.

    Construction never builds the rank directory — a bitvector used
    purely as a selection mask or an OR-merge target costs exactly its
    words.  The directory materializes on the first ``rank1``/``select1``
    and is then cached; ``resident_bytes`` reports whatever is actually
    allocated.
    """

    __slots__ = (
        "words",
        "num_bits",
        "_count",
        "_super_cum",
        "_block_rel",
        "_padded",
    )

    def __init__(self, words: np.ndarray, num_bits: int) -> None:
        num_words = (num_bits + WORD_BITS - 1) // WORD_BITS
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if len(words) != num_words:
            raise ValueError(
                f"expected {num_words} words for {num_bits} bits, "
                f"got {len(words)}"
            )
        tail = num_bits & (WORD_BITS - 1)
        if num_words and tail:
            words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        self.words = words
        self.num_bits = int(num_bits)
        self._count: int | None = None
        self._super_cum: np.ndarray | None = None
        self._block_rel: np.ndarray | None = None
        self._padded: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, num_bits: int) -> "Bitvector":
        num_words = (num_bits + WORD_BITS - 1) // WORD_BITS
        return cls(np.zeros(num_words, dtype=np.uint64), num_bits)

    @classmethod
    def ones(cls, num_bits: int) -> "Bitvector":
        num_words = (num_bits + WORD_BITS - 1) // WORD_BITS
        return cls(np.full(num_words, _FULL_WORD, dtype=np.uint64), num_bits)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitvector":
        """Pack a bool array, one bit per element (word-level, no
        position materialization)."""
        mask = np.asarray(mask)
        num_bits = len(mask)
        num_words = (num_bits + WORD_BITS - 1) // WORD_BITS
        packed = np.packbits(mask, bitorder="little")
        buffer = np.zeros(num_words * 8, dtype=np.uint8)
        buffer[: len(packed)] = packed
        return cls(buffer.view(np.uint64), num_bits)

    @classmethod
    def from_positions(cls, positions: np.ndarray, num_bits: int) -> "Bitvector":
        """Bitvector over ``[0, num_bits)`` with the given bits set."""
        mask = np.zeros(num_bits, dtype=bool)
        mask[positions] = True
        return cls.from_mask(mask)

    # ------------------------------------------------------------------
    # Rank directory
    # ------------------------------------------------------------------

    def _directory(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(super_cum, block_rel, block-padded words), built lazily."""
        if self._super_cum is None:
            num_words = len(self.words)
            num_blocks = max(
                (num_words + BLOCK_WORDS - 1) // BLOCK_WORDS, 1
            )
            if num_words == num_blocks * BLOCK_WORDS:
                padded = self.words  # already block-aligned: no copy
            else:
                padded = np.zeros(num_blocks * BLOCK_WORDS, dtype=np.uint64)
                padded[:num_words] = self.words
            per_block = (
                popcount(padded).reshape(num_blocks, BLOCK_WORDS).sum(axis=1)
            )
            block_cum = np.zeros(num_blocks, dtype=np.int64)
            np.cumsum(per_block[:-1], out=block_cum[1:])
            super_cum = block_cum[::SUPER_BLOCKS].copy()
            block_rel = (
                block_cum - np.repeat(super_cum, SUPER_BLOCKS)[:num_blocks]
            ).astype(np.uint16)
            self._padded = padded
            self._super_cum = super_cum
            self._block_rel = block_rel
            self._count = int(block_cum[-1] + per_block[-1])
        return self._super_cum, self._block_rel, self._padded

    def count(self) -> int:
        """Total number of set bits."""
        if self._count is None:
            self._count = int(popcount(self.words).sum())
        return self._count

    def rank1(self, positions: np.ndarray) -> np.ndarray:
        """Set bits strictly before each position (positions may be
        ``num_bits`` to rank past the end)."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return positions.copy()
        if self.num_bits == 0:
            return np.zeros(len(positions), dtype=np.int64)
        super_cum, block_rel, padded = self._directory()
        num_blocks = len(block_rel)
        block = np.minimum(positions >> 9, num_blocks - 1)
        base = super_cum[block >> 7] + block_rel[block]
        block_words = padded[
            (block * BLOCK_WORDS)[:, None] + np.arange(BLOCK_WORDS)
        ]
        bits_before = np.clip(
            positions[:, None] - block[:, None] * BLOCK_BITS
            - np.arange(BLOCK_WORDS) * WORD_BITS,
            0,
            WORD_BITS,
        ).astype(np.uint64)
        mask = (np.uint64(1) << (bits_before & np.uint64(63))) - np.uint64(1)
        mask[bits_before == WORD_BITS] = _FULL_WORD
        return base + popcount(block_words & mask).sum(axis=1)

    def select1(self, ranks: np.ndarray) -> np.ndarray:
        """Position of the ``k``-th (0-based) set bit for each ``k``.

        Callers must pass ``0 <= k < count()``.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return ranks.copy()
        super_cum, block_rel, padded = self._directory()
        num_blocks = len(block_rel)
        # Superblock: binary search of the cumulative ones.
        super_idx = np.searchsorted(super_cum, ranks, side="right") - 1
        rank_in_super = ranks - super_cum[super_idx]
        # Block: vectorized scan of the <=128 sampled counts inside the
        # superblock (out-of-range slots become an impossible sentinel).
        window_idx = super_idx[:, None] * SUPER_BLOCKS + np.arange(SUPER_BLOCKS)
        valid = window_idx < num_blocks
        windows = np.where(
            valid,
            block_rel[np.minimum(window_idx, num_blocks - 1)].astype(np.int64),
            np.int64(1) << 40,
        )
        in_super = (windows <= rank_in_super[:, None]).sum(axis=1) - 1
        block = super_idx * SUPER_BLOCKS + in_super
        rank_in_block = rank_in_super - block_rel[block]
        # Word: popcount cascade over the block's 8 words.
        block_words = padded[
            (block * BLOCK_WORDS)[:, None] + np.arange(BLOCK_WORDS)
        ]
        word_counts = popcount(block_words)
        word_excl = np.cumsum(word_counts, axis=1) - word_counts
        in_block = (word_excl <= rank_in_block[:, None]).sum(axis=1) - 1
        take = np.arange(len(ranks))
        rank_in_word = rank_in_block - word_excl[take, in_block]
        target = block_words[take, in_block]
        # Byte: same cascade one level down, then the 256x8 LUT.
        byte_values = ((target[:, None] >> _BYTE_SHIFTS) & np.uint64(0xFF)).astype(
            np.int64
        )
        byte_counts = popcount(byte_values.astype(np.uint64))
        byte_excl = np.cumsum(byte_counts, axis=1) - byte_counts
        in_word = (byte_excl <= rank_in_word[:, None]).sum(axis=1) - 1
        rank_in_byte = rank_in_word - byte_excl[take, in_word]
        bit = _SELECT_IN_BYTE[byte_values[take, in_word], rank_in_byte]
        return (
            block * BLOCK_BITS + in_block * WORD_BITS + in_word * 8 + bit
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Membership / decode
    # ------------------------------------------------------------------

    def get(self, positions: np.ndarray) -> np.ndarray:
        """Bool membership for each position (byte gather + shift).

        Probes through a uint8 view of the words rather than the words
        themselves: the byte gather touches the same cache lines but
        uint8 shifts run ~30% faster than numpy's variable uint64
        shifts, putting the packed probe at parity with dense bool
        fancy-indexing once the table spills cache.  The uint8 view is
        exactly ``packbits(bitorder="little")`` order — bit ``i`` lives
        in byte ``i >> 3`` at position ``i & 7``.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.zeros(0, dtype=bool)
        byte_view = self.words.view(np.uint8)
        selected = byte_view[positions >> 3]
        shifts = (positions & 7).astype(np.uint8)
        return ((selected >> shifts) & np.uint8(1)) != 0

    def positions(self) -> np.ndarray:
        """All set-bit positions, ascending (int64).

        Bulk decode through ``np.unpackbits`` — for dense vectors this
        beats ``select1(arange(count))`` by avoiding the search cascade.
        """
        if self.num_bits == 0:
            return _EMPTY_I64.copy()
        num_bytes = (self.num_bits + 7) // 8
        bits = np.unpackbits(
            self.words.view(np.uint8)[:num_bytes],
            count=self.num_bits,
            bitorder="little",
        )
        return np.flatnonzero(bits)

    def to_mask(self) -> np.ndarray:
        """The bits as a bool array."""
        if self.num_bits == 0:
            return np.zeros(0, dtype=bool)
        num_bytes = (self.num_bits + 7) // 8
        bits = np.unpackbits(
            self.words.view(np.uint8)[:num_bytes],
            count=self.num_bits,
            bitorder="little",
        )
        return bits.astype(bool)

    # ------------------------------------------------------------------
    # Word-level combination
    # ------------------------------------------------------------------

    def _check_length(self, other: "Bitvector") -> None:
        if self.num_bits != other.num_bits:
            raise ValueError(
                f"length mismatch: {self.num_bits} vs {other.num_bits}"
            )

    def __and__(self, other: "Bitvector") -> "Bitvector":
        self._check_length(other)
        return Bitvector(self.words & other.words, self.num_bits)

    def __or__(self, other: "Bitvector") -> "Bitvector":
        self._check_length(other)
        return Bitvector(self.words | other.words, self.num_bits)

    def invert(self) -> "Bitvector":
        return Bitvector(~self.words, self.num_bits)

    def ior_words(self, other: "Bitvector") -> None:
        """In-place word-level OR (the partitioned-merge primitive).

        Invalidates nothing: merge targets are built before any
        rank/select use, mirroring how Bloom partials OR their words.
        """
        self._check_length(other)
        self.words |= other.words
        self._count = None
        self._super_cum = None
        self._block_rel = None
        self._padded = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes of the packed words alone."""
        return int(self.words.nbytes)

    @property
    def directory_nbytes(self) -> int:
        """Bytes of whatever directory structures are materialized."""
        total = 0
        for attribute in (self._super_cum, self._block_rel):
            if attribute is not None:
                total += attribute.nbytes
        if self._padded is not None and self._padded is not self.words:
            total += self._padded.nbytes  # block-alignment copy
        return int(total)

    @property
    def resident_bytes(self) -> int:
        """Words plus any lazily built directory — the honest footprint."""
        return self.nbytes + self.directory_nbytes

    def __len__(self) -> int:
        return self.num_bits

    def __repr__(self) -> str:
        return f"Bitvector(bits={self.num_bits}, ones={self.count()})"
