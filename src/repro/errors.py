"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a schema definition or lookup is invalid.

    Examples: duplicate table names, unknown columns, foreign keys that
    reference columns that do not exist, or key column type mismatches.
    """


class DataError(ReproError):
    """Raised when table data violates schema constraints.

    Examples: ragged columns, duplicate primary-key values, foreign-key
    values that do not appear in the referenced key.
    """


class QueryError(ReproError):
    """Raised when a query specification is malformed.

    Examples: predicates over unknown aliases, join edges with mismatched
    column counts, disconnected join graphs where connectivity is required.
    """


class SqlError(QueryError):
    """Raised for SQL lexing, parsing, or binding failures."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """Raised when a physical plan is structurally invalid.

    Examples: a join whose key columns are not produced by its children,
    or a bitvector filter applied at a node that lacks its columns.
    """


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan.

    Examples: join graphs with no valid right-deep order, or plan spaces
    that are empty after pruning.
    """


class ExecutionError(ReproError):
    """Raised when the execution engine encounters an invalid state."""


class ServiceError(ReproError):
    """Raised by the query service layer (:mod:`repro.service`).

    Examples: a cached plan whose parameter count disagrees with the
    incoming query's fingerprint (an internal invariant violation), or
    service misconfiguration.
    """
