"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Raised when a schema definition or lookup is invalid.

    Examples: duplicate table names, unknown columns, foreign keys that
    reference columns that do not exist, or key column type mismatches.
    """


class DataError(ReproError):
    """Raised when table data violates schema constraints.

    Examples: ragged columns, duplicate primary-key values, foreign-key
    values that do not appear in the referenced key.
    """


class QueryError(ReproError):
    """Raised when a query specification is malformed.

    Examples: predicates over unknown aliases, join edges with mismatched
    column counts, disconnected join graphs where connectivity is required.
    """


class SqlError(QueryError):
    """Raised for SQL lexing, parsing, or binding failures."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """Raised when a physical plan is structurally invalid.

    Examples: a join whose key columns are not produced by its children,
    or a bitvector filter applied at a node that lacks its columns.
    """


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan.

    Examples: join graphs with no valid right-deep order, or plan spaces
    that are empty after pruning.
    """


class ExecutionError(ReproError):
    """Raised when the execution engine encounters an invalid state."""


class MorselTaskError(ExecutionError):
    """A morsel worker task failed.

    Wraps the worker's original exception (available as ``__cause__``)
    with the query name and morsel row range, so a failure deep inside
    a parallel region is diagnosable from the message alone.  Policy
    errors (:class:`ResilienceError` subclasses) are *not* wrapped —
    they already carry query context and must keep their type for the
    service layer's accounting and degradation logic.
    """


class ServiceError(ReproError):
    """Raised by the query service layer (:mod:`repro.service`).

    Examples: a cached plan whose parameter count disagrees with the
    incoming query's fingerprint (an internal invariant violation), or
    service misconfiguration.
    """


class ServiceClosed(ServiceError):
    """Raised when a query reaches a service that has been closed.

    :meth:`repro.service.QueryService.close` and
    :meth:`repro.service.AsyncQueryService.close` are terminal and
    idempotent: in-flight queries complete, queued admissions are
    cancelled with this error, and every later submission raises it
    immediately instead of touching a dead pool.
    """


class ResilienceError(ReproError):
    """Base for resource-policy failures of one in-flight query.

    Raised cooperatively at checkpoint boundaries (morsel tasks, plan
    nodes, filter-build partitions, optimizer enumeration steps), never
    asynchronously, so shared state — the worker pool, plan cache, and
    bitvector filter cache — is always left clean for the next query.

    ``partial_metrics`` carries the
    :class:`~repro.engine.metrics.ExecutionMetrics` accumulated up to
    the abort (attached by the executor), so callers can account the
    work a killed query still performed.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.partial_metrics = None


class QueryTimeout(ResilienceError):
    """Raised when a query exceeds its wall-clock deadline.

    The deadline is carried by an
    :class:`~repro.engine.context.ExecutionContext` and checked
    cooperatively; tripping it cancels the query's
    :class:`~repro.engine.context.CancelToken` so sibling morsel tasks
    short-circuit instead of finishing doomed work.
    """


class QueryCancelled(ResilienceError):
    """Raised at a checkpoint after the query's cancel token tripped.

    Workers observe cancellation *after* the root cause (a deadline
    trip, a sibling task's failure, or an explicit ``cancel()``) — the
    barrier in :func:`repro.engine.parallel.run_morsel_tasks` prefers
    the root cause over this secondary signal when both arrive.
    """


class ResourceExhausted(ResilienceError):
    """Raised when a query breaches its per-query resource budget.

    Budgets bound materialized rows and gathered bytes (the engine's
    ``rows_copied`` / ``bytes_gathered`` counters — see
    :class:`~repro.engine.context.ResourceBudget`).  The service layer
    can instead degrade the query to the serial path when configured
    with ``degrade="serial"``.
    """


class QueryShed(ResilienceError):
    """Raised when admission control refuses a query under overload.

    Shedding is the service tier protecting the queries it already
    accepted: a shed response returns in microseconds instead of
    queueing doomed work.  ``reason`` names the policy that refused
    admission (``"quota"``, ``"queue"``, ``"deadline"``, ``"breaker"``)
    and ``retry_after`` is the controller's hint, in seconds, for when
    a retry has a realistic chance of being admitted (``None`` when the
    controller cannot estimate one).
    """

    def __init__(
        self,
        message: str,
        reason: str = "overload",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after
