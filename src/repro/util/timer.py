"""Lightweight CPU timing helper.

Benchmarks report a deterministic *metered* CPU cost computed from tuple
counts (see :mod:`repro.cost.constants`), but the harness also records
wall-clock process time for sanity.  :class:`CpuTimer` wraps
``time.process_time`` with a context-manager interface.
"""

from __future__ import annotations

import time


class CpuTimer:
    """Accumulating process-CPU timer.

    >>> timer = CpuTimer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started_at: float | None = None

    def __enter__(self) -> "CpuTimer":
        self._started_at = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is not None:
            self.seconds += time.process_time() - self._started_at
            self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.seconds = 0.0
        self._started_at = None
