"""Exact joint encoding of multi-column keys into dense integer codes.

The execution engine and the exact bitvector filter both need to compare
(multi-)column key tuples across two relations *without false positives*.
Hashing alone cannot guarantee that, so we factorize the values of both
sides jointly: every distinct value of each column gets a dense code via
:func:`numpy.unique`, and the per-column codes are combined with a
mixed-radix encoding.  Two rows receive the same combined code if and
only if their key tuples are equal.

Joint factorization is exact but pays an ``O(n log n)`` sort per call.
The :class:`ColumnDictionary` fast path amortizes that cost: a stored
column is factorized *once* (sorted distinct values + a dense code per
row), and later probes encode through the dictionary with
``searchsorted`` — ``O(m log u)`` for ``m`` probe values over ``u``
distinct build values, with no re-factorization.  The executor keeps one
dictionary per ``(table, column)`` in :class:`repro.storage.database.
Database`; :class:`repro.filters.exact.ExactFilter` builds a private one
per key column at construction.
"""

from __future__ import annotations

import numpy as np

# Mixed-radix combinations stay below 2**62 so intermediate products
# cannot wrap int64; past that the callers re-densify (or bail out).
_RADIX_LIMIT = 2**62

# Module-wide count of np.unique factorizations performed by this
# module.  Tests use it to prove that dictionary-backed probe paths do
# no re-factorization at probe time.
_factorizations = 0


def factorization_count() -> int:
    """Number of ``np.unique`` factorizations run since import."""
    return _factorizations


def _unique_inverse(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Counted ``np.unique(..., return_inverse=True)``."""
    global _factorizations
    _factorizations += 1
    uniques, inverse = np.unique(values, return_inverse=True)
    return uniques, inverse.astype(np.int64, copy=False)


def _factorize_pair(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Return dense codes for ``left`` and ``right`` over a shared domain.

    The two arrays may be of different lengths but must have compatible
    dtypes (both numeric or both strings).
    """
    if left.dtype.kind in ("i", "u") and right.dtype.kind in ("i", "u"):
        left = left.astype(np.int64, copy=False)
        right = right.astype(np.int64, copy=False)
    merged = np.concatenate([left, right])
    uniques, inverse = _unique_inverse(merged)
    codes_left = inverse[: len(left)]
    codes_right = inverse[len(left):]
    return codes_left, codes_right, len(uniques)


def joint_codes(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys of two relations into comparable codes.

    Parameters
    ----------
    left_columns, right_columns:
        Parallel lists of key columns; ``left_columns[i]`` joins against
        ``right_columns[i]``.  All columns on one side must share a
        length.

    Returns
    -------
    ``(left_codes, right_codes)`` — int64 arrays where equal codes mean
    equal key tuples.  The encoding is exact (no collisions).
    """
    if len(left_columns) != len(right_columns):
        raise ValueError(
            "key column count mismatch: "
            f"{len(left_columns)} vs {len(right_columns)}"
        )
    if not left_columns:
        raise ValueError("joint_codes requires at least one key column")

    codes_l, codes_r, radix = _factorize_pair(left_columns[0], right_columns[0])
    combined_l = codes_l.astype(np.int64)
    combined_r = codes_r.astype(np.int64)
    for col_l, col_r in zip(left_columns[1:], right_columns[1:]):
        codes_l, codes_r, next_radix = _factorize_pair(col_l, col_r)
        if radix and next_radix and radix > _RADIX_LIMIT // max(next_radix, 1):
            # Mixed-radix overflow is practically unreachable at our data
            # sizes, but fall back to re-factorizing the combined codes
            # rather than silently wrapping.
            combined_l, combined_r, radix = _factorize_pair(combined_l, combined_r)
        combined_l = combined_l * next_radix + codes_l
        combined_r = combined_r * next_radix + codes_r
        radix = radix * next_radix
    return combined_l, combined_r


def single_table_codes(columns: list[np.ndarray]) -> np.ndarray:
    """Exact dense codes for a multi-column key within one relation.

    Useful for duplicate detection and grouping.  Codes are only
    comparable within the single call.
    """
    if not columns:
        raise ValueError("single_table_codes requires at least one key column")
    uniques, combined = _unique_inverse(columns[0])
    radix = len(uniques)
    for column in columns[1:]:
        uniques, inverse = _unique_inverse(column)
        next_radix = len(uniques)
        if radix and next_radix and radix > _RADIX_LIMIT // max(next_radix, 1):
            # Same guard as joint_codes: wide group-by keys over large
            # domains could silently wrap int64; re-densify the prefix
            # codes instead.
            uniques, combined = _unique_inverse(combined)
            radix = len(uniques)
        combined = combined * next_radix + inverse
        radix = radix * next_radix
    return combined


# ----------------------------------------------------------------------
# Dictionary fast paths
# ----------------------------------------------------------------------


def encode_into_domain(values: np.ndarray, domain: np.ndarray) -> np.ndarray:
    """Dense codes of ``values`` within a *sorted* distinct ``domain``.

    Values absent from the domain get code ``-1``.  Pure binary search:
    no factorization of ``values`` is performed.
    """
    if len(domain) == 0:
        return np.full(len(values), -1, dtype=np.int64)
    if (
        values.dtype.kind in ("i", "u")
        and domain.dtype.kind in ("i", "u")
        and values.dtype != domain.dtype
    ):
        values = values.astype(np.int64, copy=False)
        domain = domain.astype(np.int64, copy=False)
    positions = np.searchsorted(domain, values)
    positions[positions == len(domain)] = 0
    matched = domain[positions] == values
    return np.where(matched, positions, -1).astype(np.int64, copy=False)


# A dense value->code table is only worth its memory when the integer
# domain is reasonably compact; beyond this span we binary-search.
_TABLE_SPAN_CAP = 1 << 22


def dense_table_worthwhile(span: int, count: int, cap: int = _TABLE_SPAN_CAP) -> bool:
    """Shared cost model for dense lookup structures over a code domain.

    A table of ``span`` slots serving ``count`` distinct entries pays
    off when it is not wildly sparser than its content (4x, floored at
    1024 slots so tiny domains always qualify) and stays under the
    memory ``cap``.  Used by the dictionary lookup table here and the
    executor's counting-sort join matching, so tuning happens in one
    place.
    """
    return span <= max(4 * count, 1024) and span <= cap


class ColumnDictionary:
    """Cached factorization of one stored column.

    ``values`` holds the sorted distinct values; ``codes`` holds the
    dense int64 code of every base row (``values[codes] == column``).
    Built once per column, then reused by every join, filter probe, and
    group-by that touches the column.

    For compact integer domains a dense value->code lookup table is
    built lazily, turning :meth:`encode` into one O(1)-per-element
    gather (``np.searchsorted`` pays per-element binary-search dispatch
    that is nearly an order of magnitude slower at probe sizes).
    """

    __slots__ = ("values", "codes", "_table", "_table_base")

    def __init__(self, values: np.ndarray, codes: np.ndarray) -> None:
        self.values = values
        self.codes = codes
        self._table: np.ndarray | None | bool = None  # False = not viable
        self._table_base = 0

    @classmethod
    def build(cls, column: np.ndarray) -> "ColumnDictionary":
        values, codes = _unique_inverse(column)
        return cls(values, codes)

    @property
    def num_values(self) -> int:
        return len(self.values)

    def _lookup_table(self) -> np.ndarray | None:
        """Dense value->code table for compact integer domains."""
        table = self._table
        if table is False:
            return None
        if table is not None:
            return table
        if len(self.values) == 0 or self.values.dtype.kind not in "iu":
            self._table = False
            return None
        base = int(self.values[0])
        if not (
            np.iinfo(np.int64).min <= base
            and int(self.values[-1]) <= np.iinfo(np.int64).max
        ):
            # uint64 domains beyond int64: the offset arithmetic below
            # would overflow; binary search handles them instead.
            self._table = False
            return None
        span = int(self.values[-1]) - base + 1
        if not dense_table_worthwhile(span, len(self.values)):
            self._table = False
            return None
        built = np.full(span, -1, dtype=np.int64)
        built[self.values.astype(np.int64) - base] = np.arange(
            len(self.values), dtype=np.int64
        )
        # Benign race: concurrent builders produce identical tables.
        self._table_base = base
        self._table = built
        return built

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Codes of arbitrary ``values`` in this dictionary (-1 absent)."""
        if values.dtype.kind in "iu":
            table = self._lookup_table()
            if table is not None:
                offsets = values.astype(np.int64, copy=False) - self._table_base
                in_range = (offsets >= 0) & (offsets < len(table))
                return np.where(
                    in_range, table[np.where(in_range, offsets, 0)], -1
                )
        return encode_into_domain(values, self.values)

    def translate_to(self, other: "ColumnDictionary") -> np.ndarray:
        """Per-code mapping from this dictionary into ``other``.

        ``mapping[self_code]`` is the corresponding code in ``other``,
        or -1 when the value does not occur there.  Cost is
        ``O(u log u')`` over the two distinct-value counts — independent
        of row counts.
        """
        return other.encode(self.values)

    def __repr__(self) -> str:
        return f"ColumnDictionary(values={self.num_values}, rows={len(self.codes)})"


def combine_codes(
    code_columns: list[np.ndarray], radices: list[int]
) -> np.ndarray | None:
    """Mixed-radix combination of per-column dictionary codes.

    ``code_columns[i]`` holds codes in ``[0, radices[i])`` with ``-1``
    marking values absent from the corresponding domain; any ``-1``
    poisons the whole row to a combined code of ``-1`` (which never
    matches a valid combined code, all of which are >= 0).

    Returns ``None`` when the radix product could overflow — callers
    fall back to :func:`joint_codes`.
    """
    if len(code_columns) != len(radices):
        raise ValueError("code column / radix count mismatch")
    if not code_columns:
        raise ValueError("combine_codes requires at least one code column")
    if len(code_columns) == 1:
        # Single-column keys already satisfy the contract (-1 = absent);
        # callers must not mutate the returned array.
        return code_columns[0]
    total = 1
    for radix in radices:
        step = max(int(radix), 1)
        if total > _RADIX_LIMIT // step:
            return None
        total *= step
    combined = np.zeros(len(code_columns[0]), dtype=np.int64)
    invalid = np.zeros(len(code_columns[0]), dtype=bool)
    for codes, radix in zip(code_columns, radices):
        invalid |= codes < 0
        combined = combined * max(int(radix), 1) + np.maximum(codes, 0)
    combined[invalid] = -1
    return combined
