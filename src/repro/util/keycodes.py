"""Exact joint encoding of multi-column keys into dense integer codes.

The execution engine and the exact bitvector filter both need to compare
(multi-)column key tuples across two relations *without false positives*.
Hashing alone cannot guarantee that, so we factorize the values of both
sides jointly: every distinct value of each column gets a dense code via
:func:`numpy.unique`, and the per-column codes are combined with a
mixed-radix encoding.  Two rows receive the same combined code if and
only if their key tuples are equal.
"""

from __future__ import annotations

import numpy as np


def _factorize_pair(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Return dense codes for ``left`` and ``right`` over a shared domain.

    The two arrays may be of different lengths but must have compatible
    dtypes (both numeric or both strings).
    """
    if left.dtype.kind in ("i", "u") and right.dtype.kind in ("i", "u"):
        left = left.astype(np.int64, copy=False)
        right = right.astype(np.int64, copy=False)
    merged = np.concatenate([left, right])
    uniques, inverse = np.unique(merged, return_inverse=True)
    codes_left = inverse[: len(left)]
    codes_right = inverse[len(left):]
    return codes_left, codes_right, len(uniques)


def joint_codes(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys of two relations into comparable codes.

    Parameters
    ----------
    left_columns, right_columns:
        Parallel lists of key columns; ``left_columns[i]`` joins against
        ``right_columns[i]``.  All columns on one side must share a
        length.

    Returns
    -------
    ``(left_codes, right_codes)`` — int64 arrays where equal codes mean
    equal key tuples.  The encoding is exact (no collisions).
    """
    if len(left_columns) != len(right_columns):
        raise ValueError(
            "key column count mismatch: "
            f"{len(left_columns)} vs {len(right_columns)}"
        )
    if not left_columns:
        raise ValueError("joint_codes requires at least one key column")

    codes_l, codes_r, radix = _factorize_pair(left_columns[0], right_columns[0])
    combined_l = codes_l.astype(np.int64)
    combined_r = codes_r.astype(np.int64)
    for col_l, col_r in zip(left_columns[1:], right_columns[1:]):
        codes_l, codes_r, next_radix = _factorize_pair(col_l, col_r)
        if radix and next_radix and radix > (2**62) // max(next_radix, 1):
            # Mixed-radix overflow is practically unreachable at our data
            # sizes, but fall back to re-factorizing the combined codes
            # rather than silently wrapping.
            combined_l, combined_r, radix = _factorize_pair(combined_l, combined_r)
        combined_l = combined_l * next_radix + codes_l
        combined_r = combined_r * next_radix + codes_r
        radix = radix * next_radix
    return combined_l, combined_r


def single_table_codes(columns: list[np.ndarray]) -> np.ndarray:
    """Exact dense codes for a multi-column key within one relation.

    Useful for duplicate detection and grouping.  Codes are only
    comparable within the single call.
    """
    if not columns:
        raise ValueError("single_table_codes requires at least one key column")
    uniques, inverse = np.unique(columns[0], return_inverse=True)
    combined = inverse.astype(np.int64)
    for column in columns[1:]:
        uniques, inverse = np.unique(column, return_inverse=True)
        combined = combined * len(uniques) + inverse
    return combined
