"""Shared low-level utilities: RNG, hashing, key encoding, timing."""

from repro.util.rng import derive_rng, spawn_seeds
from repro.util.hashing import hash_int64, hash_columns, stable_text_hash
from repro.util.keycodes import joint_codes, single_table_codes
from repro.util.timer import CpuTimer

__all__ = [
    "derive_rng",
    "spawn_seeds",
    "hash_int64",
    "hash_columns",
    "stable_text_hash",
    "joint_codes",
    "single_table_codes",
    "CpuTimer",
]
