"""Deterministic random number generation helpers.

All synthetic data in the reproduction is generated from
:class:`numpy.random.Generator` objects derived from explicit integer
seeds, so every experiment is reproducible run-to-run.  Seeds for
sub-components are *derived* (never reused) so that changing the number
of draws in one component does not perturb another.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _mix(seed: int, label: str) -> int:
    """Mix ``seed`` and ``label`` into a stable 64-bit integer."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(seed, label)``.

    The same pair always yields the same stream; distinct labels yield
    statistically independent streams.

    >>> a = derive_rng(7, "customers")
    >>> b = derive_rng(7, "customers")
    >>> int(a.integers(0, 1000)) == int(b.integers(0, 1000))
    True
    """
    return np.random.default_rng(_mix(seed, label))


def spawn_seeds(seed: int, labels: list[str]) -> dict[str, int]:
    """Derive one integer seed per label from a root seed."""
    return {label: _mix(seed, label) for label in labels}
