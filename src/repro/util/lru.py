"""Thread-safe bounded LRU cache with a clear-generation guard.

Shared by the service-layer plan cache (:mod:`repro.service.plan_cache`)
and the bitvector filter cache (:mod:`repro.filters.cache`).

The *generation* guard closes an invalidation race: a caller that
misses, spends time building a value, and then publishes it could
otherwise re-insert an artifact derived from pre-invalidation state
*after* ``clear()`` wiped the cache.  Callers read :attr:`generation`
before building and pass it to :meth:`put`; if a ``clear()`` happened
in between, the insert is silently dropped (the caller still uses its
freshly built value for the current request).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable


class LruCache:
    """Bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation = 0

    def get(self, key: object) -> object | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: object, value: object, generation: int | None = None) -> bool:
        """Insert ``value``; returns False if dropped by the guard.

        ``generation`` is the value of :attr:`generation` the caller
        observed before building; a mismatch means the cache was
        cleared while the value was being built from now-invalidated
        state, so the insert is refused.
        """
        with self._lock:
            if generation is not None and generation != self._generation:
                return False
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._generation += 1

    def values(self) -> Iterable[object]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions
