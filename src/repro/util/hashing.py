"""Vectorized, stable hashing of column arrays.

Bitvector filters (in particular Bloom filters) need to hash the *values*
of join-key columns the same way at build time and at probe time.  The
functions here provide stable 64-bit hashes for integer and string
columns without relying on Python's randomized ``hash``.
"""

from __future__ import annotations

import numpy as np

# Constants from splitmix64 / Murmur-style finalizers.  The exact values
# only matter for avalanche quality, not correctness.
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def hash_int64(values: np.ndarray) -> np.ndarray:
    """Hash an integer array to uint64 with a splitmix64 finalizer.

    The input is viewed as unsigned 64-bit; the output has strong
    avalanche behaviour so consecutive keys spread across the space.
    """
    with np.errstate(over="ignore"):
        x = values.astype(np.int64, copy=False).view(np.uint64).copy()
        x += _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MUL1
        x ^= x >> np.uint64(27)
        x *= _MUL2
        x ^= x >> np.uint64(31)
    return x


def stable_text_hash(values: np.ndarray) -> np.ndarray:
    """Hash a string array to uint64, stably across processes.

    Uses a per-element FNV-1a over UTF-8 bytes.  This is a Python-level
    loop and therefore O(n) with interpreter overhead; join keys in the
    reproduction workloads are integers, so string hashing only appears
    on small dimension columns.
    """
    out = np.empty(len(values), dtype=np.uint64)
    fnv_offset = 0xCBF29CE484222325
    fnv_prime = 0x100000001B3
    mask = 0xFFFFFFFFFFFFFFFF
    for i, value in enumerate(values.tolist()):
        acc = fnv_offset
        for byte in str(value).encode("utf-8"):
            acc = ((acc ^ byte) * fnv_prime) & mask
        out[i] = acc
    return out


def hash_column(values: np.ndarray) -> np.ndarray:
    """Hash one column (integer, float, or string) to uint64."""
    if values.dtype.kind in ("i", "u", "b"):
        return hash_int64(values.astype(np.int64, copy=False))
    if values.dtype.kind == "f":
        return hash_int64(values.astype(np.float64, copy=False).view(np.int64))
    return stable_text_hash(values)


def hash_columns(columns: list[np.ndarray]) -> np.ndarray:
    """Combine per-column hashes into one uint64 hash per row.

    Uses a boost-style ``hash_combine`` so column order matters and
    multi-column keys distribute well.
    """
    if not columns:
        raise ValueError("hash_columns requires at least one column")
    combined = hash_column(columns[0])
    with np.errstate(over="ignore"):
        for column in columns[1:]:
            h = hash_column(column)
            combined = combined ^ (
                h + _GOLDEN + (combined << np.uint64(6)) + (combined >> np.uint64(2))
            )
    return combined
