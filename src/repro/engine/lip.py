"""LIP-style adaptive ordering of bitvector filter application.

Lookahead Information Passing (Zhu et al., VLDB 2017 — the paper's
closest prior work [38]) applies the bitvector filters stacked on a fact
table in order of observed selectivity, most-selective first, so the
expected number of filter checks per tuple is minimized regardless of
what the optimizer estimated.

This module implements the measurement step: given a relation batch and
the filters destined for it, probe each filter on a row sample, then
apply them in ascending pass-rate order.  The executor enables it with
``adaptive_filter_order=True``; the default (paper order: push-down
arrival order) is kept for faithful reproduction of the main results.
"""

from __future__ import annotations

import numpy as np

from repro.filters.base import BitvectorFilter
from repro.plan.nodes import BitvectorDef

_SAMPLE_ROWS = 512


def order_filters_adaptively(
    definitions: list[BitvectorDef],
    filters: dict[int, BitvectorFilter],
    column_head,
    num_rows: int,
    zone_skip: dict[int, float] | None = None,
) -> list[BitvectorDef]:
    """Return ``definitions`` sorted by sampled pass rate (ascending).

    ``column_head(alias, name, count)`` supplies the first ``count``
    rows of a relation column — matching
    :meth:`repro.engine.relation.Relation.column_head`, which gathers
    only the sampled rows rather than materializing whole columns.
    With fewer than two filters or an empty relation the input order is
    returned unchanged.  Sampling the first rows (data is generated in
    random order) keeps the measurement O(filters x sample).

    ``zone_skip`` optionally maps ``filter_id`` to the fraction of the
    relation's rows that zone maps already prune for that filter (see
    :meth:`repro.engine.executor.Executor._bitvector_zone_pruning`).
    Zone pruning is applied once up front, so every filter then checks
    only the *kept* rows — among which a filter with whole-relation
    pass rate ``p`` and skip fraction ``z`` passes ``~p / (1 - z)``
    (its failing rows were concentrated in the skipped morsels, the
    same renormalization as the optimizer's residual-elimination
    rule).  Scores are that renormalized rate, so a filter whose
    elimination the layout already did ranks *last* instead of
    wasting the first, most expensive position.
    """
    if len(definitions) < 2 or num_rows == 0:
        return list(definitions)
    sample_rows = min(_SAMPLE_ROWS, num_rows)
    scored: list[tuple[float, int, BitvectorDef]] = []
    for index, definition in enumerate(definitions):
        bitvector = filters.get(definition.filter_id)
        if bitvector is None:
            # not yet created (should not happen; keep stable order)
            scored.append((1.0, index, definition))
            continue
        key_columns = [
            column_head(alias, column, sample_rows)
            for alias, column in definition.probe_keys
        ]
        passes = bitvector.contains(key_columns)
        pass_rate = float(np.mean(passes)) if len(passes) else 1.0
        if zone_skip:
            skip = min(1.0, max(0.0, zone_skip.get(definition.filter_id, 0.0)))
            if skip >= 1.0:
                # Every row it could eliminate is already skipped; the
                # filter passes everything it will actually see.
                pass_rate = 1.0
            else:
                pass_rate = min(1.0, pass_rate / (1.0 - skip))
        scored.append((pass_rate, index, definition))
    scored.sort(key=lambda item: (item[0], item[1]))
    return [definition for _, _, definition in scored]
