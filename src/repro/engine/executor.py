"""Plan executor.

Recursively evaluates a physical plan tree.  For every hash join the
*build* child executes first; if the join creates a bitvector filter it
is registered before the *probe* child runs, so every application site
(which Algorithm 1 guarantees lies inside the probe subtree) finds its
filter populated — the same scheduling property real engines rely on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine.metrics import (
    ExecutionMetrics,
    OPERATOR_KIND_JOIN,
    OPERATOR_KIND_LEAF,
    OPERATOR_KIND_OTHER,
)
from repro.engine.relation import Relation
from repro.errors import ExecutionError
from repro.expr.eval import evaluate_predicate
from repro.expr.expressions import referenced_columns
from repro.filters.base import BitvectorFilter
from repro.filters.registry import create_filter
from repro.plan.nodes import (
    AggregateNode,
    BitvectorDef,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
)
from repro.storage.database import Database
from repro.util.keycodes import combine_codes, dense_table_worthwhile, joint_codes


@dataclasses.dataclass
class ExecutionResult:
    """Result of executing one plan: output + metrics."""

    relation: Relation
    aggregates: dict[str, np.ndarray] | None
    metrics: ExecutionMetrics

    @property
    def num_rows(self) -> int:
        if self.aggregates is not None:
            first = next(iter(self.aggregates.values()), None)
            return 0 if first is None else len(first)
        return self.relation.num_rows

    def scalar(self, label: str) -> object:
        """Value of a single-row aggregate output column."""
        if self.aggregates is None:
            raise ExecutionError("plan has no aggregate output")
        values = self.aggregates[label]
        if len(values) != 1:
            raise ExecutionError(f"aggregate {label!r} is not scalar")
        return values[0]


class Executor:
    """Executes physical plans against a database.

    Parameters
    ----------
    database:
        Table source.
    filter_kind:
        Which bitvector implementation joins create: ``"exact"``
        (default — the no-false-positives filter the theory assumes),
        ``"bloom"``, or ``"blocked_bloom"``.
    filter_options:
        Extra keyword arguments for the filter constructor (e.g.
        ``bits_per_key``).
    filter_cache:
        Optional :class:`~repro.filters.cache.BitvectorFilterCache`
        shared across executions; joins whose build side is a bare scan
        reuse previously built filters instead of rebuilding them.
    eager_materialization:
        When True, reproduce the seed engine's memory model: every
        mask/gather copies every column immediately, and join keys are
        re-factorized per join instead of encoded through the
        table-resident dictionary indexes.  Exists as the measured
        baseline for the zero-copy hot path (see
        ``benchmarks/test_exec_hot_path.py``).
    """

    def __init__(
        self,
        database: Database,
        filter_kind: str = "exact",
        filter_options: dict | None = None,
        adaptive_filter_order: bool = False,
        filter_cache=None,
        eager_materialization: bool = False,
    ) -> None:
        self._database = database
        self._filter_kind = filter_kind
        self._filter_options = dict(filter_options or {})
        # LIP-style runtime reordering of stacked filters (see
        # repro.engine.lip); off by default to match the paper's engine.
        self._adaptive_filter_order = adaptive_filter_order
        self._filter_cache = filter_cache
        self._eager = eager_materialization

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        predicate_overrides: dict[str, object] | None = None,
    ) -> ExecutionResult:
        """Execute a plan.

        ``predicate_overrides`` maps a relation alias to the predicate
        its scan should evaluate *instead of* the one baked into the
        plan — how the service layer re-executes a cached plan with
        fresh constants without mutating the shared tree.  All per-
        execution state lives in locals, so one executor may run the
        same plan concurrently from many threads.
        """
        metrics = ExecutionMetrics()
        filters: dict[int, BitvectorFilter] = {}
        overrides = predicate_overrides or {}
        needed = _needed_columns(plan, overrides)
        aggregates: dict[str, np.ndarray] | None = None
        if isinstance(plan, AggregateNode):
            relation = self._run(plan.child, metrics, filters, needed, overrides)
            aggregates = self._aggregate(plan, relation, metrics)
        else:
            relation = self._run(plan, metrics, filters, needed, overrides)
        return ExecutionResult(relation=relation, aggregates=aggregates,
                               metrics=metrics)

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    def _run(
        self,
        node: PlanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        if isinstance(node, ScanNode):
            return self._scan(node, metrics, filters, needed, overrides)
        if isinstance(node, HashJoinNode):
            return self._hash_join(node, metrics, filters, needed, overrides)
        if isinstance(node, FilterNode):
            return self._residual_filter(node, metrics, filters, needed, overrides)
        if isinstance(node, AggregateNode):
            raise ExecutionError("aggregate must be the plan root")
        raise ExecutionError(f"cannot execute node {node.label}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _scan(
        self,
        node: ScanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_LEAF)
        table = self._database.table(node.table_name)
        names = sorted(needed.get(node.alias, set()))
        columns = {(node.alias, name): table.column(name) for name in names}
        sources = {
            (node.alias, name): (node.table_name, name) for name in names
        }
        relation = Relation(
            columns, table.num_rows, sources=sources, counters=metrics
        )
        record.add("scan", table.num_rows)

        predicate = overrides.get(node.alias, node.predicate)
        if predicate is not None:
            mask = evaluate_predicate(
                predicate, relation.provider, relation.num_rows
            )
            relation = self._settle(relation.mask(mask))

        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters
        )
        record.rows_out = relation.num_rows
        return relation

    def _settle(self, relation: Relation) -> Relation:
        """Eager baseline hook: copy every column now, like the seed
        engine did, instead of deferring to first read."""
        if self._eager:
            return relation.materialized()
        return relation

    def _hash_join(
        self,
        node: HashJoinNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_JOIN)

        build_rel = self._run(node.build, metrics, filters, needed, overrides)
        record.add("build", build_rel.num_rows)

        if node.created_bitvector is not None:
            definition = node.created_bitvector

            def build_filter():
                # Key columns materialize inside the builder so a
                # filter-cache hit gathers nothing.
                key_columns = [
                    build_rel.column(alias, column)
                    for alias, column in definition.build_keys
                ]
                return create_filter(
                    self._filter_kind, key_columns, **self._filter_options
                )

            cache_key = self._cacheable_filter_key(node, definition, overrides)
            if cache_key is not None:
                bitvector, was_cached = self._filter_cache.get_or_build(
                    cache_key, build_filter
                )
                filters[definition.filter_id] = bitvector
                if was_cached:
                    metrics.filter_cache_hits += 1
                else:
                    metrics.filter_cache_misses += 1
                    record.add("filter_insert", build_rel.num_rows)
            else:
                filters[definition.filter_id] = build_filter()
                record.add("filter_insert", build_rel.num_rows)

        probe_rel = self._run(node.probe, metrics, filters, needed, overrides)
        record.add("probe", probe_rel.num_rows)

        build_codes, probe_codes, domain = self._join_key_codes(
            node, build_rel, probe_rel, metrics
        )
        build_idx, probe_idx = _expand_matches(build_codes, probe_codes, domain)
        result = self._settle(
            probe_rel.merged_with(build_rel, probe_idx, build_idx)
        )
        record.add("output", result.num_rows)
        record.rows_out = result.num_rows
        return result

    def _join_key_codes(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        probe_rel: Relation,
        metrics: ExecutionMetrics,
    ) -> tuple[np.ndarray, np.ndarray, int | None]:
        """int64 codes for both key sides; equal codes <=> equal tuples.

        Fast path: every key column that still carries base-table
        provenance is encoded through the table-resident dictionary
        indexes — an O(rows) code gather plus an O(distinct) domain
        translation — instead of a per-join ``np.unique`` factorization
        over build+probe values.  Falls back to joint factorization when
        provenance is missing (derived columns) or the combined key
        domain would overflow the mixed radix.

        The third element is the combined code domain size when the
        dictionary path produced the codes (all codes < domain), else
        ``None``; :func:`_expand_matches` uses it for counting-sort
        matching.
        """
        if build_rel.num_rows == 0 or probe_rel.num_rows == 0:
            empty = np.array([], dtype=np.int64)
            return empty, empty, None
        if not self._eager:
            coded = self._dictionary_codes(node, build_rel, probe_rel)
            if coded is not None:
                metrics.dictionary_hits += len(node.build_keys)
                return coded
            metrics.dictionary_misses += len(node.build_keys)
        build_keys = [
            build_rel.column(alias, column) for alias, column in node.build_keys
        ]
        probe_keys = [
            probe_rel.column(alias, column) for alias, column in node.probe_keys
        ]
        build_codes, probe_codes = joint_codes(build_keys, probe_keys)
        return build_codes, probe_codes, None

    def _dictionary_codes(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        probe_rel: Relation,
    ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Dictionary-encoded join keys, or None when inapplicable."""
        build_code_columns: list[np.ndarray] = []
        probe_code_columns: list[np.ndarray] = []
        radices: list[int] = []
        for (b_alias, b_col), (p_alias, p_col) in zip(
            node.build_keys, node.probe_keys
        ):
            build_src = build_rel.base_source(b_alias, b_col)
            probe_src = probe_rel.base_source(p_alias, p_col)
            if build_src is None or probe_src is None:
                return None
            if (
                self._database.table(build_src[0]).column(build_src[1]).dtype.kind
                in "fc"
                or self._database.table(probe_src[0]).column(probe_src[1]).dtype.kind
                in "fc"
            ):
                # Float keys: ordered dictionary lookups cannot match
                # NaN == NaN the way joint factorization does; take the
                # fallback so both join paths agree on NaN keys.
                return None
            build_dict = self._database.dictionary(build_src[0], build_src[1])
            probe_dict = self._database.dictionary(probe_src[0], probe_src[1])
            build_codes = build_dict.codes
            if build_src[2] is not None:
                build_codes = build_codes[build_src[2]]
            probe_codes = probe_dict.codes
            if probe_src[2] is not None:
                probe_codes = probe_codes[probe_src[2]]
            if probe_dict is not build_dict:
                # Re-express probe codes in the build column's domain;
                # values absent from it become -1 (can never match).
                probe_codes = probe_dict.translate_to(build_dict)[probe_codes]
            build_code_columns.append(build_codes)
            probe_code_columns.append(probe_codes)
            radices.append(build_dict.num_values)
        build_combined = combine_codes(build_code_columns, radices)
        probe_combined = combine_codes(probe_code_columns, radices)
        if build_combined is None or probe_combined is None:
            return None
        domain = 1
        for radix in radices:
            domain *= max(radix, 1)
        return build_combined, probe_combined, domain

    def _cacheable_filter_key(
        self,
        node: HashJoinNode,
        definition,
        overrides: dict[str, object],
    ) -> tuple | None:
        """Cache key for this join's filter, or None when not reusable.

        Only filters built from a bare table scan are workload-level
        artifacts: any applied bitvector or upstream join would couple
        the filter's contents to the rest of this particular plan.
        """
        if self._filter_cache is None:
            return None
        build = node.build
        if not isinstance(build, ScanNode) or build.applied_bitvectors:
            return None
        from repro.expr.expressions import structural_key
        from repro.filters.cache import filter_cache_key

        predicate = overrides.get(build.alias, build.predicate)
        return filter_cache_key(
            table_name=build.table_name,
            key_columns=tuple(column for _, column in definition.build_keys),
            predicate_key=structural_key(predicate, include_aliases=False),
            filter_kind=self._filter_kind,
            filter_options=self._filter_options,
        )

    def _residual_filter(
        self,
        node: FilterNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        relation = self._run(node.child, metrics, filters, needed, overrides)
        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters
        )
        record.rows_out = relation.num_rows
        return relation

    def _apply_bitvectors(
        self,
        definitions: list[BitvectorDef],
        relation: Relation,
        record,
        filters: dict[int, BitvectorFilter],
    ) -> Relation:
        if self._adaptive_filter_order and len(definitions) > 1:
            from repro.engine.lip import order_filters_adaptively

            definitions = order_filters_adaptively(
                definitions, filters, relation.column_head, relation.num_rows
            )
        for definition in definitions:
            bitvector = filters.get(definition.filter_id)
            if bitvector is None:
                raise ExecutionError(
                    f"bitvector {definition!r} applied before creation; "
                    "plan scheduling is broken"
                )
            key_columns = [
                relation.column(alias, column)
                for alias, column in definition.probe_keys
            ]
            record.add("filter_check", relation.num_rows)
            if self._eager and hasattr(bitvector, "contains_legacy"):
                # Baseline mode: the seed engine's per-probe joint
                # re-factorization instead of the indexed probe.
                mask = bitvector.contains_legacy(key_columns)
            else:
                mask = bitvector.contains(key_columns)
            relation = self._settle(relation.mask(mask))
        return relation

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(
        self,
        node: AggregateNode,
        relation: Relation,
        metrics: ExecutionMetrics,
    ) -> dict[str, np.ndarray]:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        record.add("aggregate", relation.num_rows)

        if node.group_by:
            group_columns = [
                relation.column(ref.alias, ref.column) for ref in node.group_by
            ]
            from repro.util.keycodes import single_table_codes

            codes = (
                single_table_codes(group_columns)
                if relation.num_rows
                else np.array([], dtype=np.int64)
            )
            unique_codes, group_index = np.unique(codes, return_inverse=True)
            num_groups = len(unique_codes)
            # First row index of each group, as a stable representative
            # for emitting the grouping columns.
            first_positions = np.full(num_groups, relation.num_rows, dtype=np.int64)
            if num_groups:
                np.minimum.at(
                    first_positions, group_index, np.arange(relation.num_rows)
                )
            output: dict[str, np.ndarray] = {}
            for ref, values in zip(node.group_by, group_columns):
                output[f"{ref.alias}.{ref.column}"] = values[first_positions]
        else:
            num_groups = 1
            group_index = np.zeros(relation.num_rows, dtype=np.int64)
            output = {}

        for aggregate in node.aggregates:
            label = aggregate.label or str(aggregate)
            if aggregate.function == "count":
                counts = np.bincount(group_index, minlength=num_groups)
                output[label] = counts.astype(np.int64)
                continue
            assert aggregate.argument is not None
            values = relation.column(
                aggregate.argument.alias, aggregate.argument.column
            ).astype(np.float64)
            if aggregate.function == "sum":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                output[label] = sums
            elif aggregate.function == "avg":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                counts = np.bincount(group_index, minlength=num_groups)
                with np.errstate(invalid="ignore", divide="ignore"):
                    output[label] = np.where(counts > 0, sums / counts, np.nan)
            elif aggregate.function in ("min", "max"):
                fill = np.inf if aggregate.function == "min" else -np.inf
                folded = np.full(num_groups, fill)
                ufunc = np.minimum if aggregate.function == "min" else np.maximum
                if relation.num_rows:
                    ufunc.at(folded, group_index, values)
                output[label] = folded
            else:
                raise ExecutionError(
                    f"unsupported aggregate {aggregate.function!r}"
                )
        record.rows_out = num_groups if relation.num_rows or node.group_by else 1
        return output


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _match_keys(
    build_keys: list[np.ndarray], probe_keys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (build_row, probe_row) index pairs, vectorized.

    Sort-based equi-join: encode both key sets over a shared domain,
    sort the build side, binary-search each probe key, and expand the
    per-probe match ranges.
    """
    if len(build_keys[0]) == 0 or len(probe_keys[0]) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    build_codes, probe_codes = joint_codes(build_keys, probe_keys)
    return _expand_matches(build_codes, probe_codes)


# Counting-sort matching is used when the code domain is dense enough
# for its histogram to stay cache-resident and worth the allocation
# (shared cost model: repro.util.keycodes.dense_table_worthwhile).
_DENSE_DOMAIN_CAP = 1 << 20


def _expand_matches(
    build_codes: np.ndarray,
    probe_codes: np.ndarray,
    domain: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Match ranges for pre-encoded keys (equal codes <=> equal tuples).

    Negative probe codes mark values absent from the build domain; they
    produce empty match ranges naturally.  With a known dense code
    ``domain`` (dictionary-encoded keys) the per-probe match ranges
    come from a histogram over the domain — O(probe rows + domain)
    gathers — replacing the two binary-search passes over the sorted
    build side, which profiling shows dominate at fact-table probe
    sizes.  The build side is ordered with numpy's stable argsort
    (radix sort for integer codes) in both branches.
    """
    if len(build_codes) == 0 or len(probe_codes) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    order = np.argsort(build_codes, kind="stable")
    if domain is not None and dense_table_worthwhile(
        domain, len(build_codes), _DENSE_DOMAIN_CAP
    ):
        histogram = np.bincount(build_codes, minlength=domain)
        range_ends = np.cumsum(histogram)
        valid = probe_codes >= 0
        clipped = np.where(valid, probe_codes, 0)
        counts = np.where(valid, histogram[clipped], 0)
        lo = range_ends[clipped] - histogram[clipped]
    else:
        sorted_codes = build_codes[order]
        lo = np.searchsorted(sorted_codes, probe_codes, side="left")
        hi = np.searchsorted(sorted_codes, probe_codes, side="right")
        counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(np.arange(len(probe_codes), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_idx = order[starts + offsets]
    return build_idx, probe_idx


def _needed_columns(
    plan: PlanNode, overrides: dict[str, object] | None = None
) -> dict[str, set[str]]:
    """Columns each alias must materialize for this plan."""
    needed: dict[str, set[str]] = {}
    overrides = overrides or {}

    def want(alias: str, column: str) -> None:
        needed.setdefault(alias, set()).add(column)

    for node in plan.walk():
        if isinstance(node, ScanNode):
            predicate = overrides.get(node.alias, node.predicate)
            if predicate is not None:
                for alias, column in referenced_columns(predicate):
                    want(alias, column)
        if isinstance(node, HashJoinNode):
            for alias, column in node.build_keys + node.probe_keys:
                want(alias, column)
        for definition in node.applied_bitvectors:
            for alias, column in definition.probe_keys:
                want(alias, column)
        if isinstance(node, AggregateNode):
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    want(aggregate.argument.alias, aggregate.argument.column)
            for ref in node.group_by:
                want(ref.alias, ref.column)
        if isinstance(node, ScanNode):
            needed.setdefault(node.alias, set())
    return needed
