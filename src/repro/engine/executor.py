"""Plan executor.

Recursively evaluates a physical plan tree.  For every hash join the
*build* child executes first; if the join creates a bitvector filter it
is registered before the *probe* child runs, so every application site
(which Algorithm 1 guarantees lies inside the probe subtree) finds its
filter populated — the same scheduling property real engines rely on.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.engine.metrics import (
    ExecutionMetrics,
    OPERATOR_KIND_JOIN,
    OPERATOR_KIND_LEAF,
    OPERATOR_KIND_OTHER,
)
from repro.engine.context import ExecutionContext
from repro.engine.parallel import run_morsel_tasks
from repro.engine.relation import Relation
from repro.errors import ExecutionError, MorselTaskError, ResilienceError
from repro.testing.faults import fault_point
from repro.expr.eval import evaluate_predicate
from repro.expr.expressions import ColumnRef, referenced_columns
from repro.filters.base import BitvectorFilter, compute_key_bounds
from repro.filters.registry import FILTER_KINDS, create_filter
from repro.plan.nodes import (
    AggregateNode,
    BitvectorDef,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    TopKNode,
)
from repro.query.spec import OUTPUT_ALIAS
from repro.storage.database import Database
from repro.storage.partition import (
    DEFAULT_MORSEL_ROWS,
    MIN_PARALLEL_ROWS,
    AdaptiveMorselSizer,
    morsel_ranges,
)
from repro.storage.zonemaps import (
    filter_prune_flags,
    predicate_band,
    scan_morsel_decisions,
)
from repro.util.keycodes import combine_codes, dense_table_worthwhile, joint_codes

# Serial-below-this threshold, re-exported under the historical name so
# tests can monkeypatch the executor's copy (the storage layer owns the
# canonical value — the estimator's build-parallelism discount reads it
# from there).
_MIN_PARALLEL_ROWS = MIN_PARALLEL_ROWS

# "No dictionary-join context computed yet" marker, distinct from None
# ("computed, not applicable") so a failed attempt is never repeated.
_UNSET = object()


@dataclasses.dataclass
class ExecutionResult:
    """Result of executing one plan: output + metrics."""

    relation: Relation
    aggregates: dict[str, np.ndarray] | None
    metrics: ExecutionMetrics

    @property
    def num_rows(self) -> int:
        if self.aggregates is not None:
            first = next(iter(self.aggregates.values()), None)
            return 0 if first is None else len(first)
        return self.relation.num_rows

    def scalar(self, label: str) -> object:
        """Value of a single-row aggregate output column."""
        if self.aggregates is None:
            raise ExecutionError("plan has no aggregate output")
        values = self.aggregates[label]
        if len(values) != 1:
            raise ExecutionError(f"aggregate {label!r} is not scalar")
        return values[0]


class Executor:
    """Executes physical plans against a database.

    Parameters
    ----------
    database:
        Table source.
    filter_kind:
        Which bitvector implementation joins create: ``"exact"``
        (default — the no-false-positives filter the theory assumes),
        ``"bloom"``, or ``"blocked_bloom"``.
    filter_options:
        Extra keyword arguments for the filter constructor (e.g.
        ``bits_per_key``).
    filter_cache:
        Optional :class:`~repro.filters.cache.BitvectorFilterCache`
        shared across executions; joins whose build side is a bare scan
        reuse previously built filters instead of rebuilding them.
    eager_materialization:
        When True, reproduce the seed engine's memory model: every
        mask/gather copies every column immediately, and join keys are
        re-factorized per join instead of encoded through the
        table-resident dictionary indexes.  Exists as the measured
        baseline for the zero-copy hot path (see
        ``benchmarks/test_exec_hot_path.py``).
    parallelism:
        Worker count for morsel-driven intra-query parallelism.  The
        default 1 keeps execution on the calling thread with exactly
        the serial code path (byte-identical results, seed benchmarks
        stay valid).  At N > 1 the probe-side work of each pipeline —
        predicate evaluation, bitvector filter application, hash-join
        probing, and large column gathers — runs per-morsel on the
        shared worker pool; build sides (hash tables, filters) are
        built once and shared immutably, so probes are lock-free.
    morsel_rows:
        Target rows per morsel when splitting relations for the pool.
    adaptive_morsels:
        Resize morsels mid-pipeline from observed per-morsel wall time
        and selectivity (see
        :class:`~repro.storage.partition.AdaptiveMorselSizer`): each
        parallel region's first few morsels run at ``morsel_rows``, and
        the remaining rows are re-split — small morsels for selective,
        skew-prone pipelines, large ones for cheap scans.  Applies to
        regions over intermediate relations (bitvector applications,
        hash-join probes); base-table scans keep the configured shape
        so zone maps stay aligned with the dispatched ranges.  Sizing
        moves range boundaries only, never which rows a region covers,
        so output is byte-identical either way.  Ignored (no effect)
        at ``parallelism=1``.
    zone_maps:
        Consult per-morsel min/max synopses (see
        :mod:`repro.storage.zonemaps`) before dispatching morsel work:
        scan predicates, bitvector filter applications, and hash-join
        probes skip whole morsels whose value bounds provably cannot
        qualify.  Pruning is conservative, so output stays
        byte-identical at every parallelism level; ``zone_maps=False``
        preserves the exact unpruned code path (and the eager baseline
        never prunes, mirroring the seed engine).
    """

    def __init__(
        self,
        database: Database,
        filter_kind: str = "exact",
        filter_options: dict | None = None,
        adaptive_filter_order: bool = False,
        filter_cache=None,
        eager_materialization: bool = False,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        adaptive_morsels: bool = True,
        zone_maps: bool = True,
    ) -> None:
        self._database = database
        self._filter_kind = filter_kind
        self._filter_options = dict(filter_options or {})
        # LIP-style runtime reordering of stacked filters (see
        # repro.engine.lip); off by default to match the paper's engine.
        self._adaptive_filter_order = adaptive_filter_order
        self._filter_cache = filter_cache
        self._eager = eager_materialization
        self._parallelism = max(int(parallelism), 1)
        self._morsel_rows = max(int(morsel_rows), 1)
        # The eager baseline exists to reproduce the seed engine, so it
        # never takes a parallel path and never prunes.
        self._parallel = self._parallelism > 1 and not self._eager
        self._adaptive_morsels = bool(adaptive_morsels) and self._parallel
        self._zone_maps = bool(zone_maps) and not self._eager

    @property
    def parallelism(self) -> int:
        return self._parallelism

    @property
    def morsel_rows(self) -> int:
        return self._morsel_rows

    @property
    def adaptive_morsels(self) -> bool:
        return self._adaptive_morsels

    @property
    def zone_maps(self) -> bool:
        return self._zone_maps

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        predicate_overrides: dict[str, object] | None = None,
        context: ExecutionContext | None = None,
        tracer=None,
    ) -> ExecutionResult:
        """Execute a plan.

        ``predicate_overrides`` maps a relation alias to the predicate
        its scan should evaluate *instead of* the one baked into the
        plan — how the service layer re-executes a cached plan with
        fresh constants without mutating the shared tree.  All per-
        execution state lives in locals, so one executor may run the
        same plan concurrently from many threads.

        ``context`` arms cooperative resilience enforcement (see
        :mod:`repro.engine.context`): the deadline and cancel token are
        checked at plan-node and morsel-task boundaries, the resource
        budget against the live ``rows_copied`` / ``bytes_gathered``
        counters after every parallel barrier.  A tripped limit raises
        the matching :class:`~repro.errors.ResilienceError` with the
        partial :class:`ExecutionMetrics` attached — and because every
        abort happens *between* tasks, the shared pool and any attached
        filter cache stay clean for the next query.  ``None`` (the
        default) is the zero-overhead path.

        ``tracer`` arms structured tracing (see :mod:`repro.obs`): plan
        nodes, morsel tasks, filter builds, and zone-pruning outcomes
        record spans/events, and per-node inclusive wall time lands in
        ``NodeMetrics.wall_seconds``.  ``None`` (the default) keeps
        every instrumented site a single attribute test; tracing never
        changes what is computed, so results are byte-identical on or
        off.
        """
        metrics = ExecutionMetrics()
        if tracer is not None:
            metrics.tracer = tracer
        if context is not None and context.enabled:
            metrics.context = context
            try:
                return self._execute_guarded(
                    plan, predicate_overrides, metrics
                )
            except ResilienceError as exc:
                if exc.partial_metrics is None:
                    exc.partial_metrics = metrics
                if tracer is not None:
                    # The abort cause as an instant event under whatever
                    # span was open when the limit tripped.
                    tracer.event(
                        "resilience.abort",
                        cause=type(exc).__name__,
                        detail=str(exc),
                    )
                raise
        return self._execute_guarded(plan, predicate_overrides, metrics)

    def _execute_guarded(
        self,
        plan: PlanNode,
        predicate_overrides: dict[str, object] | None,
        metrics: ExecutionMetrics,
    ) -> ExecutionResult:
        if metrics.context is not None:
            metrics.context.check()
        if self._adaptive_morsels:
            # One sizer per execution (pipeline): observations from this
            # plan's morsels resize only this plan's later regions, and
            # concurrent executions of one executor never share state.
            metrics.morsel_sizer = AdaptiveMorselSizer(self._morsel_rows)
        filters: dict[int, BitvectorFilter] = {}
        overrides = predicate_overrides or {}
        needed = _needed_columns(plan, overrides)
        aggregates: dict[str, np.ndarray] | None = None
        if isinstance(plan, TopKNode):
            inner = plan.child
            if isinstance(inner, AggregateNode):
                relation = self._run(
                    inner.child, metrics, filters, needed, overrides
                )
                aggregates = self._finalize(
                    "aggregate", inner, metrics,
                    lambda: self._aggregate(inner, relation, metrics),
                )
                aggregates = self._finalize(
                    "topk", plan, metrics,
                    lambda: self._topk_aggregates(plan, aggregates, metrics),
                )
                aggregates = _drop_hidden(inner, aggregates)
            else:
                relation = self._run(inner, metrics, filters, needed, overrides)
                relation = self._finalize(
                    "topk", plan, metrics,
                    lambda: self._topk_relation(plan, relation, metrics),
                )
        elif isinstance(plan, AggregateNode):
            relation = self._run(plan.child, metrics, filters, needed, overrides)
            aggregates = self._finalize(
                "aggregate", plan, metrics,
                lambda: self._aggregate(plan, relation, metrics),
            )
            aggregates = _drop_hidden(plan, aggregates)
        else:
            relation = self._run(plan, metrics, filters, needed, overrides)
        if metrics.context is not None:
            # Final budget check: gathers done after the last plan-node
            # checkpoint (e.g. the aggregate's measure-column gather)
            # still count — an over-budget result is never returned.
            # The deadline is deliberately *not* re-checked here: the
            # answer is already computed, so failing it would discard
            # finished work for no resource win.
            metrics.context.check_budget(metrics)
        return ExecutionResult(relation=relation, aggregates=aggregates,
                               metrics=metrics)

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    @staticmethod
    def _checkpoint(metrics: ExecutionMetrics) -> None:
        """Cooperative resilience checkpoint (deadline, cancel, budget).

        Free when no context is armed: one attribute load and a None
        test — the property the warm-path overhead bound in
        ``BENCH_robustness.json`` is measured against.
        """
        context = metrics.context
        if context is not None:
            context.checkpoint(metrics)

    def _finalize(self, name: str, node: PlanNode,
                  metrics: ExecutionMetrics, fn):
        """Run one root-finalize step (aggregate / top-k) under a span.

        Disarmed, this is the bare call; armed, the step gets a span and
        its inclusive wall time lands on the node's metrics record.
        """
        tracer = metrics.tracer
        if tracer is None:
            return fn()
        span = tracer.span(name, node_id=node.node_id, label=node.label)
        with span:
            result = fn()
        metrics.add_wall(node.node_id, span.duration)
        return result

    def _run(
        self,
        node: PlanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        tracer = metrics.tracer
        if tracer is None:
            return self._dispatch(node, metrics, filters, needed, overrides)
        span = tracer.span(
            "node", node_id=node.node_id, label=node.label
        )
        with span:
            relation = self._dispatch(
                node, metrics, filters, needed, overrides
            )
            span.set(rows_out=relation.num_rows)
        # Inclusive (children counted): the same convention EXPLAIN
        # ANALYZE reports in most engines, taken from the span's clock.
        metrics.add_wall(node.node_id, span.duration)
        return relation

    def _dispatch(
        self,
        node: PlanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        self._checkpoint(metrics)
        if isinstance(node, ScanNode):
            return self._scan(node, metrics, filters, needed, overrides)
        if isinstance(node, HashJoinNode):
            return self._hash_join(node, metrics, filters, needed, overrides)
        if isinstance(node, FilterNode):
            return self._residual_filter(node, metrics, filters, needed, overrides)
        if isinstance(node, (AggregateNode, TopKNode)):
            raise ExecutionError(
                f"{type(node).__name__} is only valid at the plan root"
            )
        raise ExecutionError(f"cannot execute node {node.label}")

    # ------------------------------------------------------------------
    # Morsel parallelism
    # ------------------------------------------------------------------

    def _ranges(self, num_rows: int) -> list[tuple[int, int]] | None:
        """Morsel ranges for a parallel region, or None to stay serial."""
        if not self._parallel or num_rows < _MIN_PARALLEL_ROWS:
            return None
        ranges = morsel_ranges(
            num_rows, self._morsel_rows, min_morsels=self._parallelism
        )
        return ranges if len(ranges) >= 2 else None

    def _map_morsels(self, metrics: ExecutionMetrics,
                     ranges: list[tuple[int, int]], fn,
                     sizer: AdaptiveMorselSizer | None = None,
                     out_rows=None) -> list:
        """Run ``fn(start, stop, worker_metrics)`` per morsel (barrier).

        Results come back in morsel order, so concatenating them
        reproduces the serial row order exactly.  Each worker gets a
        private :class:`ExecutionMetrics`; the flat counters are merged
        into ``metrics`` after the barrier.

        With a ``sizer``, each task is wall-clocked on its worker and
        the observations (rows in, seconds, ``out_rows(result)``
        surviving rows) are folded into the sizer on the main thread
        after the barrier — the feedback adaptive sizing runs on.

        With an armed :class:`~repro.engine.context.ExecutionContext`
        (captured from ``metrics`` — worker metrics stay bare), every
        task checks the deadline/cancel token before touching its
        morsel, the region's cancel token short-circuits siblings after
        the first failure, and non-policy worker exceptions are wrapped
        as :class:`~repro.errors.MorselTaskError` with the query name
        and the morsel's row range.  The budget is re-checked against
        the merged counters after the barrier.
        """
        workers = [ExecutionMetrics() for _ in ranges]
        context = metrics.context
        tracer = metrics.tracer
        if tracer is not None:
            # The parent id is captured here, on the dispatching thread,
            # so each worker's "morsel" span hangs under the plan-node
            # (or filter-build) span that fanned the region out.
            parent = tracer.current_span_id()

            def fn(start: int, stop: int, worker: ExecutionMetrics,
                   _fn=fn, _parent=parent):
                with tracer.span(
                    "morsel", parent=_parent, rows_in=stop - start
                ) as span:
                    result = _fn(start, stop, worker)
                    rows = _result_rows(result)
                    if rows is not None:
                        span.set(rows_out=rows)
                    if worker.morsels_pruned or worker.rows_skipped:
                        span.set(
                            morsels_pruned=worker.morsels_pruned,
                            rows_skipped=worker.rows_skipped,
                        )
                return result
        if sizer is None:
            inner = fn
        else:
            def inner(start: int, stop: int, worker: ExecutionMetrics):
                began = time.perf_counter()
                result = fn(start, stop, worker)
                return result, time.perf_counter() - began

        tasks = [
            _morsel_task(inner, start, stop, worker, context)
            for (start, stop), worker in zip(ranges, workers)
        ]
        results = run_morsel_tasks(
            self._parallelism, tasks,
            cancel_token=None if context is None else context.cancel_token,
        )
        if sizer is not None:
            unwrapped = []
            for (start, stop), (result, seconds) in zip(ranges, results):
                sizer.observe(
                    stop - start, seconds,
                    out_rows(result) if out_rows is not None else None,
                )
                unwrapped.append(result)
            results = unwrapped
        for worker in workers:
            metrics.merge_counters(worker)
        if context is not None:
            context.checkpoint(metrics)
        return results

    def _adaptive_map(self, metrics: ExecutionMetrics, num_rows: int,
                      task, out_rows=None) -> list | None:
        """Morsel-map ``task`` over ``[0, num_rows)``, or None (serial).

        The adaptive-sizing dispatcher for regions over *intermediate*
        relations: when the execution carries a morsel sizer and it is
        not yet calibrated, the first few morsels run at the configured
        ``morsel_rows`` and the remaining rows are re-split at the size
        their observations propose; calibrated regions split at the
        proposal outright.  Ranges always cover ``[0, num_rows)`` in
        order regardless of sizing, so concatenated results equal the
        statically-sized (and the serial) computation byte for byte.
        """
        if not self._parallel or num_rows < _MIN_PARALLEL_ROWS:
            return None
        sizer = metrics.morsel_sizer
        target = sizer.morsel_rows() if sizer is not None else self._morsel_rows
        ranges = morsel_ranges(num_rows, target, min_morsels=self._parallelism)
        if len(ranges) < 2:
            return None
        if sizer is None or sizer.calibrated:
            return self._map_morsels(
                metrics, ranges, task, sizer=sizer, out_rows=out_rows
            )
        # Calibration phase: enough morsels to feed every worker once,
        # then resize the remainder from what they observed.
        head = ranges[: max(self._parallelism, sizer.sample_morsels)]
        results = self._map_morsels(
            metrics, head, task, sizer=sizer, out_rows=out_rows
        )
        rest_start = head[-1][1]
        if rest_start < num_rows:
            rest = [
                (start + rest_start, stop + rest_start)
                for start, stop in morsel_ranges(
                    num_rows - rest_start, sizer.morsel_rows(),
                    min_morsels=self._parallelism,
                )
            ]
            results.extend(
                self._map_morsels(
                    metrics, rest, task, sizer=sizer, out_rows=out_rows
                )
            )
        return results

    def _parallel_gather(self, base: np.ndarray, selection,
                         cancel_token=None) -> np.ndarray | None:
        """Morsel-wise column gather hook installed on scan relations.

        Splits ``base[selection]`` across the pool, each worker writing
        its disjoint output range (``np.take`` releases the GIL for
        plain dtypes).  Returns None when the gather is too small to be
        worth dispatching, letting :class:`Relation` gather inline.
        """
        ranges = self._ranges(len(selection))
        if ranges is None:
            return None
        out = np.empty(len(selection), dtype=base.dtype)

        def task(start: int, stop: int) -> None:
            np.take(base, selection[start:stop], out=out[start:stop])

        run_morsel_tasks(
            self._parallelism,
            [(lambda s=start, e=stop: task(s, e)) for start, stop in ranges],
            cancel_token=cancel_token,
        )
        return out

    def _gather_hook(self, metrics: ExecutionMetrics):
        """The parallel-gather hook for this execution's relations.

        Binds the execution's cancel token (when a context is armed) so
        gathers dispatched from inside :class:`Relation` short-circuit
        with the rest of the query; derived relations inherit the bound
        hook through ``gather``/``merged_with``.
        """
        if not self._parallel:
            return None
        context = metrics.context
        if context is None:
            return self._parallel_gather
        token = context.cancel_token
        return lambda base, selection: self._parallel_gather(
            base, selection, token
        )

    def _scan_ranges(self, table) -> list[tuple[int, int]] | None:
        """Morsels of a base table, via the storage-layer partitioning
        (cached on the immutable table) rather than an ad-hoc split.
        Delegates to :meth:`_table_ranges` — the same shape zone maps
        are keyed by, which the pruning soundness argument relies on."""
        if not self._parallel or table.num_rows < _MIN_PARALLEL_ROWS:
            return None
        ranges = self._table_ranges(table)
        if len(ranges) < 2:
            return None
        return ranges

    def _parallel_selection(self, relation: Relation,
                            metrics: ExecutionMetrics, mask_fn,
                            ranges: list[tuple[int, int]] | None = None,
                            ) -> np.ndarray | None:
        """Surviving-row selection computed per morsel, or None (serial).

        ``mask_fn(view)`` returns the boolean keep-mask of one morsel
        view; the concatenated ``flatnonzero`` offsets equal the serial
        ``np.flatnonzero(mask)`` over the whole relation, so the
        resulting gather is byte-identical to the serial path.

        Explicit ``ranges`` (base-table scans — the shape zone maps are
        keyed by) dispatch as given; without them the region is split by
        the adaptive dispatcher (:meth:`_adaptive_map`).
        """

        def task(start: int, stop: int, worker: ExecutionMetrics) -> np.ndarray:
            view = relation.range_view(start, stop, counters=worker)
            return np.flatnonzero(mask_fn(view)) + start

        # Decode bitmap selections on the main thread before fan-out:
        # every morsel slices one shared positions array.
        relation.settle_selections()
        if ranges is None:
            parts = self._adaptive_map(
                metrics, relation.num_rows, task, out_rows=len
            )
            if parts is None:
                return None
            return np.concatenate(parts)
        return np.concatenate(self._map_morsels(metrics, ranges, task))

    # ------------------------------------------------------------------
    # Zone-map pruning (see repro.storage.zonemaps)
    # ------------------------------------------------------------------

    def _table_ranges(self, table) -> list[tuple[int, int]]:
        """The morsel partitioning zone maps are keyed by: the same
        shape the parallel scan dispatches (``_scan_ranges``)."""
        return [
            (part.start, part.stop)
            for part in table.morsels(
                self._morsel_rows, min_morsels=self._parallelism
            )
        ]

    def _zone_map(self, table_name: str, column: str):
        return self._database.zone_map(
            table_name, column, self._morsel_rows, self._parallelism
        )

    @staticmethod
    def _split_pruned(metrics: ExecutionMetrics,
                      ranges: list[tuple[int, int]],
                      pruned: list[bool]) -> list[tuple[int, int]]:
        """Account the pruned morsels into ``metrics``; return the kept."""
        kept = []
        pruned_count = skipped = 0
        for row_range, flag in zip(ranges, pruned):
            if flag:
                pruned_count += 1
                skipped += row_range[1] - row_range[0]
            else:
                kept.append(row_range)
        metrics.morsels_pruned += pruned_count
        metrics.rows_skipped += skipped
        if metrics.tracer is not None and pruned_count:
            metrics.tracer.event(
                "zone.prune",
                morsels_pruned=pruned_count,
                rows_skipped=skipped,
            )
        return kept

    def _scan_selection_with_zones(
        self,
        relation: Relation,
        ranges: list[tuple[int, int]],
        pruned: list[bool],
        accepted: list[bool],
        metrics: ExecutionMetrics,
        mask_fn,
    ) -> np.ndarray:
        """Scan selection with zone decisions applied per morsel.

        Pruned morsels contribute nothing; accepted morsels (the
        constant-morsel short-circuit) contribute every offset without
        evaluating the predicate — both count their rows under
        ``rows_skipped``, because that is work the kernels never did.
        Undecided morsels evaluate normally (on the pool when big
        enough).  Pieces concatenate in morsel order, reproducing the
        whole-relation ``flatnonzero`` exactly.
        """
        eval_ranges = []
        pruned_count = accepted_count = skipped = 0
        for row_range, is_pruned, is_accepted in zip(ranges, pruned, accepted):
            if is_pruned:
                pruned_count += 1
                skipped += row_range[1] - row_range[0]
            elif is_accepted:
                accepted_count += 1
                skipped += row_range[1] - row_range[0]
            else:
                eval_ranges.append(row_range)
        metrics.morsels_pruned += pruned_count
        metrics.morsels_short_circuited += accepted_count
        metrics.rows_skipped += skipped
        if metrics.tracer is not None and skipped:
            metrics.tracer.event(
                "zone.prune",
                morsels_pruned=pruned_count,
                morsels_short_circuited=accepted_count,
                rows_skipped=skipped,
            )
        evaluated = iter(
            self._selection_parts_over_ranges(
                relation, eval_ranges, metrics, mask_fn
            )
            if eval_ranges
            else ()
        )
        pieces: list[np.ndarray] = []
        for (start, stop), is_pruned, is_accepted in zip(
            ranges, pruned, accepted
        ):
            if is_pruned:
                continue
            if is_accepted:
                pieces.append(np.arange(start, stop, dtype=np.int64))
            else:
                pieces.append(next(evaluated))
        if not pieces:
            return np.array([], dtype=np.int64)
        return np.concatenate(pieces)

    def _selection_over_ranges(self, relation: Relation,
                               ranges: list[tuple[int, int]],
                               metrics: ExecutionMetrics,
                               mask_fn) -> np.ndarray:
        """Surviving-row selection evaluated over the kept morsels only.

        The pruned counterpart of :meth:`_parallel_selection`: morsels
        absent from ``ranges`` were proven empty, so concatenating the
        kept morsels' offsets still reproduces the serial whole-relation
        ``flatnonzero`` exactly.  Dispatches to the pool when the kept
        work is big enough, else evaluates inline (also the serial
        executor's path — pruning works at any parallelism).
        """
        if not ranges:
            return np.array([], dtype=np.int64)
        return np.concatenate(
            self._selection_parts_over_ranges(relation, ranges, metrics, mask_fn)
        )

    def _selection_parts_over_ranges(self, relation: Relation,
                                     ranges: list[tuple[int, int]],
                                     metrics: ExecutionMetrics,
                                     mask_fn) -> list[np.ndarray]:
        """Per-range surviving-row offsets, in range order (the body of
        :meth:`_selection_over_ranges`, exposed so the constant-morsel
        short-circuit can interleave unevaluated ranges)."""

        def task(start: int, stop: int,
                 worker: ExecutionMetrics) -> np.ndarray:
            view = relation.range_view(start, stop, counters=worker)
            return np.flatnonzero(mask_fn(view)) + start

        total = sum(stop - start for start, stop in ranges)
        if self._parallel and len(ranges) >= 2 and total >= _MIN_PARALLEL_ROWS:
            relation.settle_selections()
            return self._map_morsels(metrics, ranges, task)
        return [task(start, stop, metrics) for start, stop in ranges]

    def _scan_zone_pruning(
        self, alias: str, table, predicate
    ) -> tuple[list[tuple[int, int]], list[bool], list[bool]] | None:
        """Morsels the scan predicate provably rejects — or accepts.

        Returns ``(ranges, pruned_flags, accepted_flags)`` when at
        least one morsel can skip row-wise evaluation in either
        direction, else ``None`` (callers then run the unpruned path
        unchanged).  ``pruned`` morsels contribute no rows; ``accepted``
        morsels (the constant-morsel short-circuit — every row provably
        satisfies the predicate) contribute *all* their rows, also
        without evaluating.  Zone maps are fetched lazily per
        referenced column, so predicates the interval logic cannot use
        (LIKE, NOT) never trigger a synopsis build.
        """
        if not self._zone_maps or table.num_rows == 0:
            return None
        if any(a != alias for a, _ in referenced_columns(predicate)):
            return None
        ranges = self._table_ranges(table)
        if not ranges:
            return None
        pruned, accepted = scan_morsel_decisions(
            predicate, alias,
            lambda column: self._zone_map(table.name, column),
            len(ranges),
        )
        if not any(pruned) and not any(accepted):
            return None
        return ranges, pruned, accepted

    def _scan_band_search(
        self, alias: str, table, predicate, metrics: ExecutionMetrics
    ) -> tuple[int, int] | None:
        """Clustered-band fast path: the scan's row band, or ``None``.

        When the predicate is one value band on a column the zone map
        proves globally sorted (no NaN), the surviving rows are exactly
        one contiguous range — two binary searches replace per-morsel
        min/max checks *and* every row-wise predicate evaluation.  The
        searched bounds follow numpy comparison order, the same total
        order the sortedness check verified, so the band equals the
        serial ``flatnonzero`` selection exactly (byte-identical
        results at any parallelism).  Gated on zone maps being enabled:
        with them off, executions must report zero skipped rows.
        """
        if not self._zone_maps or table.num_rows == 0:
            return None
        band = predicate_band(predicate, alias)
        if band is None:
            return None
        column, low, low_inclusive, high, high_inclusive = band
        zone = self._zone_map(table.name, column)
        if zone is None or not zone.sorted_ascending:
            return None
        values = table.column(column)
        try:
            lo = 0 if low is None else int(np.searchsorted(
                values, low, side="left" if low_inclusive else "right"
            ))
            hi = len(values) if high is None else int(np.searchsorted(
                values, high, side="right" if high_inclusive else "left"
            ))
        except (TypeError, ValueError):
            # Literal not comparable against the column under numpy's
            # order; fall back to normal evaluation.
            return None
        hi = max(lo, hi)
        # Every morsel was decided by the two searches, and every row —
        # kept or not — avoided row-wise evaluation: same accounting as
        # the constant-morsel short-circuit (skipped work, not skipped
        # output).
        metrics.morsels_band_searched += len(self._table_ranges(table))
        metrics.rows_skipped += table.num_rows
        if metrics.tracer is not None:
            metrics.tracer.event(
                "scan.band_search",
                table=table.name,
                column=column,
                band_rows=hi - lo,
            )
        return lo, hi

    def _bitvector_zone_pruning(
        self,
        definitions: list[BitvectorDef],
        relation: Relation,
        filters: dict[int, BitvectorFilter],
    ) -> tuple[list[tuple[int, int]], list[bool], dict[int, float]] | None:
        """Zone-map pruning for a stack of applied bitvector filters.

        Only relations whose probe key columns are whole base-table
        columns (identity scans — the fact-table case the paper's
        filters target) can be pruned: zone maps describe base row
        ranges.  Because stacked filters are conjunctive, a morsel
        pruned by *any* filter in the stack contributes nothing to the
        stack's output, so one combined keep/prune partition serves the
        whole application sequence.  Returns ``(ranges, pruned_flags,
        skip_fraction_by_filter_id)``, or ``None`` when nothing can be
        pruned.
        """
        if not self._zone_maps or relation.num_rows == 0:
            return None
        table_name: str | None = None
        per_definition: list[tuple[BitvectorDef, list[str]] | None] = []
        for definition in definitions:
            columns: list[str] | None = []
            for alias, column in definition.probe_keys:
                source = relation.base_source(alias, column)
                if source is None or source[2] is not None or (
                    table_name is not None and source[0] != table_name
                ):
                    columns = None
                    break
                table_name = source[0]
                columns.append(source[1])
            per_definition.append(
                (definition, columns) if columns is not None else None
            )
        if table_name is None:
            return None
        table = self._database.table(table_name)
        if table.num_rows != relation.num_rows:
            return None
        ranges = self._table_ranges(table)
        if not ranges:
            return None
        combined = [False] * len(ranges)
        skip_fractions: dict[int, float] = {}
        zones: dict[str, object] = {}
        for entry in per_definition:
            if entry is None:
                continue
            definition, columns = entry
            bitvector = filters.get(definition.filter_id)
            if bitvector is None:
                continue  # missing filters fail loudly in the apply loop
            if bitvector.num_keys == 0:
                # Nothing was inserted; contains() is all-False and
                # every morsel is provably empty.
                pruned = [True] * len(ranges)
            else:
                key_bounds = bitvector.key_bounds()
                if key_bounds is None or all(b is None for b in key_bounds):
                    skip_fractions[definition.filter_id] = 0.0
                    continue
                for column in columns:
                    if column not in zones:
                        zones[column] = self._zone_map(table_name, column)
                column_zones = [zones[column] for column in columns]
                pruned = filter_prune_flags(
                    key_bounds, column_zones, len(ranges)
                )
            skipped_rows = 0
            for index, flag in enumerate(pruned):
                if flag:
                    combined[index] = True
                    skipped_rows += ranges[index][1] - ranges[index][0]
            skip_fractions[definition.filter_id] = (
                skipped_rows / relation.num_rows
            )
        if not any(combined):
            return None
        return ranges, combined, skip_fractions

    def _join_zone_pruning(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        probe_rel: Relation,
        filters: dict[int, BitvectorFilter],
    ) -> tuple[list[tuple[int, int]], list[bool]] | None:
        """Probe morsels whose key range matches no build-side key.

        The join-level analogue of bitvector pruning: even when the
        optimizer deployed no filter on this join, the build side's key
        bounds let the executor skip probe morsels that cannot produce
        a single match.  Requires the probe keys to be whole base-table
        columns (see :meth:`_bitvector_zone_pruning`).
        """
        if not self._zone_maps:
            return None
        table_name: str | None = None
        probe_columns: list[str] = []
        for alias, column in node.probe_keys:
            source = probe_rel.base_source(alias, column)
            if source is None or source[2] is not None or (
                table_name is not None and source[0] != table_name
            ):
                return None
            table_name = source[0]
            probe_columns.append(source[1])
        if table_name is None:
            return None
        table = self._database.table(table_name)
        if table.num_rows != probe_rel.num_rows:
            return None
        bounds = self._build_key_bounds(node, build_rel, filters)
        if bounds is None or all(b is None for b in bounds):
            return None
        ranges = self._table_ranges(table)
        if not ranges:
            return None
        zones = [
            self._zone_map(table_name, column) for column in probe_columns
        ]
        pruned = filter_prune_flags(bounds, zones, len(ranges))
        if not any(pruned):
            return None
        return ranges, pruned

    def _build_key_bounds(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        filters: dict[int, BitvectorFilter],
    ) -> list[tuple | None] | None:
        """Bounds of the build side's key columns, as cheaply as possible.

        Preference order: the bounds the join's own bitvector filter
        already holds (free — its dictionaries are sorted), else a
        min/max pass over identity build columns (zero-copy views of a
        dimension table).  Filtered build sides without a filter would
        force a gather just to compute bounds, so they report ``None``.
        """
        definition = node.created_bitvector
        if definition is not None and tuple(definition.build_keys) == tuple(
            node.build_keys
        ):
            bitvector = filters.get(definition.filter_id)
            if bitvector is not None:
                return bitvector.key_bounds()
        columns: list[np.ndarray] = []
        for alias, column in node.build_keys:
            source = build_rel.base_source(alias, column)
            if source is None or source[2] is not None:
                return None
            columns.append(build_rel.column(alias, column))
        return compute_key_bounds(columns)

    def _morsel_probe_match(
        self,
        context,
        probe_rel: Relation,
        kept_ranges: list[tuple[int, int]],
        metrics: ExecutionMetrics,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hash-join probe over the kept morsels only.

        The pruned counterpart of :meth:`_parallel_probe_match`:
        skipped morsels were proven matchless, so concatenating the
        kept morsels' match pairs (probe offsets rebased per morsel)
        reproduces the whole-relation probe order exactly.  Runs inline
        when serial or when too little work survives pruning.
        """
        empty = np.array([], dtype=np.int64)
        if not kept_ranges:
            return empty, empty
        build_combined, encode_probe, domain = context
        matcher = _BuildMatcher(build_combined, domain)

        def task(start: int, stop: int, worker: ExecutionMetrics):
            view = probe_rel.range_view(start, stop, counters=worker)
            build_idx, probe_idx = matcher.match(encode_probe(view))
            return build_idx, probe_idx + start

        total = sum(stop - start for start, stop in kept_ranges)
        if (
            self._parallel
            and len(kept_ranges) >= 2
            and total >= _MIN_PARALLEL_ROWS
        ):
            probe_rel.settle_selections()
            parts = self._map_morsels(metrics, kept_ranges, task)
        else:
            parts = [
                task(start, stop, metrics) for start, stop in kept_ranges
            ]
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
        )

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _scan(
        self,
        node: ScanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_LEAF)
        table = self._database.table(node.table_name)
        names = sorted(needed.get(node.alias, set()))
        columns = {(node.alias, name): table.column(name) for name in names}
        sources = {
            (node.alias, name): (node.table_name, name) for name in names
        }
        relation = Relation(
            columns, table.num_rows, sources=sources, counters=metrics,
            parallel_gather=self._gather_hook(metrics),
        )
        record.add("scan", table.num_rows)

        predicate = overrides.get(node.alias, node.predicate)
        if predicate is not None:
            def mask_fn(view, predicate=predicate):
                return evaluate_predicate(
                    predicate, view.provider, view.num_rows
                )

            band = self._scan_band_search(
                node.alias, table, predicate, metrics
            )
            pruning = (
                None
                if band is not None
                else self._scan_zone_pruning(node.alias, table, predicate)
            )
            if band is not None:
                # The whole predicate is answered by the band: the
                # survivors are rows [lo, hi) of the base table, held
                # as a zero-copy slice view.
                relation = self._settle(relation.narrow(*band))
            elif pruning is not None:
                # Zone maps proved some morsels empty (pruned) or full
                # (accepted): evaluate the predicate only over the
                # undecided morsels, keep accepted morsels whole, and
                # interleave everything in morsel order — exactly the
                # unpruned selection.
                ranges, pruned, accepted = pruning
                selection = self._scan_selection_with_zones(
                    relation, ranges, pruned, accepted, metrics, mask_fn
                )
                relation = self._settle(relation.select_sorted(selection))
            else:
                selection = self._parallel_selection(
                    relation, metrics, mask_fn,
                    ranges=self._scan_ranges(table),
                )
                if selection is not None:
                    relation = self._settle(relation.select_sorted(selection))
                else:
                    mask = evaluate_predicate(
                        predicate, relation.provider, relation.num_rows
                    )
                    relation = self._settle(relation.mask(mask))

        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters, metrics
        )
        record.rows_out = relation.num_rows
        return relation

    def _settle(self, relation: Relation) -> Relation:
        """Eager baseline hook: copy every column now, like the seed
        engine did, instead of deferring to first read."""
        if self._eager:
            return relation.materialized()
        return relation

    def _hash_join(
        self,
        node: HashJoinNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_JOIN)

        build_rel = self._run(node.build, metrics, filters, needed, overrides)
        record.add("build", build_rel.num_rows)

        if node.created_bitvector is not None:
            definition = node.created_bitvector

            def build_filter():
                # Build work (key-column gathers included) happens
                # inside the builder so a filter-cache hit gathers
                # nothing; the build phase is wall-clocked here so the
                # metrics see only constructions actually paid for.
                started = time.perf_counter()
                tracer = metrics.tracer
                if tracer is None:
                    built = self._build_join_filter(
                        definition, build_rel, metrics
                    )
                else:
                    with tracer.span(
                        "filter.build",
                        filter_id=definition.filter_id,
                        build_rows=build_rel.num_rows,
                        kind=self._filter_kind,
                    ):
                        built = self._build_join_filter(
                            definition, build_rel, metrics
                        )
                metrics.filter_build_seconds += time.perf_counter() - started
                return built

            cache_key = self._cacheable_filter_key(node, definition, overrides)
            if cache_key is not None:
                bitvector, was_cached = self._filter_cache.get_or_build(
                    cache_key, build_filter, tracer=metrics.tracer
                )
                filters[definition.filter_id] = bitvector
                if was_cached:
                    metrics.filter_cache_hits += 1
                else:
                    metrics.filter_cache_misses += 1
                    record.add("filter_insert", build_rel.num_rows)
            else:
                filters[definition.filter_id] = build_filter()
                record.add("filter_insert", build_rel.num_rows)

        probe_rel = self._run(node.probe, metrics, filters, needed, overrides)
        record.add("probe", probe_rel.num_rows)

        # One shared dictionary-join context serves every path: the
        # zone-pruned and parallel probes consume it directly, and a
        # failed attempt hands it (possibly None) to the serial path so
        # the build-side encoding is never computed twice.
        build_idx = probe_idx = None
        context = _UNSET
        if build_rel.num_rows and probe_rel.num_rows:
            pruning = self._join_zone_pruning(
                node, build_rel, probe_rel, filters
            )
            if pruning is not None:
                context = self._dictionary_join_context(
                    node, build_rel, probe_rel
                )
                if context is not None:
                    ranges, pruned = pruning
                    kept = self._split_pruned(metrics, ranges, pruned)
                    metrics.dictionary_hits += len(node.build_keys)
                    build_idx, probe_idx = self._morsel_probe_match(
                        context, probe_rel, kept, metrics
                    )
            if build_idx is None and self._parallel and (
                probe_rel.num_rows >= _MIN_PARALLEL_ROWS
            ):
                if context is _UNSET:
                    context = self._dictionary_join_context(
                        node, build_rel, probe_rel
                    )
                if context is not None:
                    match = self._parallel_probe_match(
                        context, probe_rel, metrics
                    )
                    if match is not None:
                        metrics.dictionary_hits += len(node.build_keys)
                        build_idx, probe_idx = match
        if build_idx is None:
            build_codes, probe_codes, domain = self._join_key_codes(
                node, build_rel, probe_rel, metrics, context
            )
            build_idx, probe_idx = _expand_matches(
                build_codes, probe_codes, domain
            )
        result = self._settle(
            probe_rel.merged_with(build_rel, probe_idx, build_idx)
        )
        record.add("output", result.num_rows)
        record.rows_out = result.num_rows
        return result

    def _parallel_probe_match(
        self,
        context,
        probe_rel: Relation,
        metrics: ExecutionMetrics,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Morsel-parallel probe of one hash join, or None (serial).

        The build side is encoded and sorted once on the main thread
        (single-build-then-shared); each morsel encodes its slice of
        the probe keys through the table-resident dictionaries and
        matches against the shared immutable build structures.  Morsels
        are cut by the adaptive dispatcher (match-output counts feed
        the sizer's selectivity signal).  Match pairs concatenate in
        morsel order, reproducing the serial output order exactly.
        Requires the dictionary fast path — joint factorization needs
        both whole sides at once and stays serial.
        """
        build_combined, encode_probe, domain = context
        matcher = _BuildMatcher(build_combined, domain)

        def task(start: int, stop: int, worker: ExecutionMetrics):
            view = probe_rel.range_view(start, stop, counters=worker)
            build_idx, probe_idx = matcher.match(encode_probe(view))
            return build_idx, probe_idx + start

        probe_rel.settle_selections()
        parts = self._adaptive_map(
            metrics, probe_rel.num_rows, task,
            out_rows=lambda part: len(part[1]),
        )
        if parts is None:
            return None
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
        )

    def _join_key_codes(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        probe_rel: Relation,
        metrics: ExecutionMetrics,
        context=_UNSET,
    ) -> tuple[np.ndarray, np.ndarray, int | None]:
        """int64 codes for both key sides; equal codes <=> equal tuples.

        Fast path: every key column that still carries base-table
        provenance is encoded through the table-resident dictionary
        indexes — an O(rows) code gather plus an O(distinct) domain
        translation — instead of a per-join ``np.unique`` factorization
        over build+probe values.  Falls back to joint factorization when
        provenance is missing (derived columns) or the combined key
        domain would overflow the mixed radix.

        ``context`` carries a dictionary-join context the caller
        already computed (or ``None`` if that attempt failed), so the
        parallel probe's fallback never re-encodes the build side.

        The third element is the combined code domain size when the
        dictionary path produced the codes (all codes < domain), else
        ``None``; :func:`_expand_matches` uses it for counting-sort
        matching.
        """
        if build_rel.num_rows == 0 or probe_rel.num_rows == 0:
            empty = np.array([], dtype=np.int64)
            return empty, empty, None
        if not self._eager:
            if context is _UNSET:
                context = self._dictionary_join_context(
                    node, build_rel, probe_rel
                )
            coded = None
            if context is not None:
                build_combined, encode_probe, domain = context
                probe_combined = encode_probe(probe_rel)
                if probe_combined is not None:
                    coded = (build_combined, probe_combined, domain)
            if coded is not None:
                metrics.dictionary_hits += len(node.build_keys)
                return coded
            metrics.dictionary_misses += len(node.build_keys)
        build_keys = [
            build_rel.column(alias, column) for alias, column in node.build_keys
        ]
        probe_keys = [
            probe_rel.column(alias, column) for alias, column in node.probe_keys
        ]
        build_codes, probe_codes = joint_codes(build_keys, probe_keys)
        return build_codes, probe_codes, None

    def _dictionary_join_context(
        self,
        node: HashJoinNode,
        build_rel: Relation,
        probe_rel: Relation,
    ):
        """Shared dictionary-encoding context for one join, or None.

        Returns ``(build_combined, encode_probe, domain)``: the build
        side's combined codes (computed once), a closure encoding the
        probe keys of any view of ``probe_rel`` — the whole relation or
        one morsel — and the combined code domain size.  Per-key
        artifacts (dictionaries, domain translations) are resolved once
        here and shared read-only by every morsel, which is the
        "per-partition dictionary reuse" the partitioned storage layer
        is built around.
        """
        per_key: list[tuple[str, str, object, np.ndarray | None]] = []
        build_code_columns: list[np.ndarray] = []
        radices: list[int] = []
        for (b_alias, b_col), (p_alias, p_col) in zip(
            node.build_keys, node.probe_keys
        ):
            build_src = build_rel.base_source(b_alias, b_col)
            probe_src = probe_rel.base_source(p_alias, p_col)
            if build_src is None or probe_src is None:
                return None
            if (
                self._database.table(build_src[0]).column(build_src[1]).dtype.kind
                in "fc"
                or self._database.table(probe_src[0]).column(probe_src[1]).dtype.kind
                in "fc"
            ):
                # Float keys: ordered dictionary lookups cannot match
                # NaN == NaN the way joint factorization does; take the
                # fallback so both join paths agree on NaN keys.
                return None
            build_dict = self._database.dictionary(build_src[0], build_src[1])
            probe_dict = self._database.dictionary(probe_src[0], probe_src[1])
            build_codes = build_dict.codes
            if build_src[2] is not None:
                build_codes = build_codes[build_src[2]]
            if probe_dict is not build_dict:
                # Re-express probe codes in the build column's domain;
                # values absent from it become -1 (can never match).
                translate = probe_dict.translate_to(build_dict)
            else:
                translate = None
            per_key.append((p_alias, p_col, probe_dict, translate))
            build_code_columns.append(build_codes)
            radices.append(build_dict.num_values)
        build_combined = combine_codes(build_code_columns, radices)
        if build_combined is None:
            return None
        domain = 1
        for radix in radices:
            domain *= max(radix, 1)

        def encode_probe(view: Relation) -> np.ndarray | None:
            probe_code_columns: list[np.ndarray] = []
            for p_alias, p_col, probe_dict, translate in per_key:
                source = view.base_source(p_alias, p_col)
                codes = probe_dict.codes
                if source[2] is not None:
                    codes = codes[source[2]]
                if translate is not None:
                    codes = translate[codes]
                probe_code_columns.append(codes)
            return combine_codes(probe_code_columns, radices)

        return build_combined, encode_probe, domain

    def _build_join_filter(
        self,
        definition,
        build_rel: Relation,
        metrics: ExecutionMetrics,
    ) -> BitvectorFilter:
        """Build one join's bitvector filter, partitioned when parallel.

        At ``parallelism > 1`` with a big enough build side, the build
        pipeline runs per-morsel on the shared pool: each worker
        gathers its slice of the build key columns (zero-copy range
        views over the build relation's selection), factorizes/hashes
        it, and returns a partial filter under the shared geometry; the
        main thread then merges the partials *in morsel order* — a
        deterministic barrier, so the published filter is byte-
        equivalent to a serial build no matter how the pool scheduled
        the partials (see the partitioned-build contract on
        :class:`~repro.filters.base.BitvectorFilter`).  Serial
        executions (and filter kinds without partitioned support) take
        the untouched single-thread path.
        """
        self._checkpoint(metrics)
        filter_class = FILTER_KINDS.get(self._filter_kind)
        ranges = self._ranges(build_rel.num_rows)
        if (
            ranges is not None
            and filter_class is not None
            and filter_class.supports_partitioned_build
        ):
            geometry = filter_class.build_geometry(
                build_rel.num_rows, **self._filter_options
            )

            def task(start: int, stop: int, worker: ExecutionMetrics):
                fault_point("filter.build_partition")
                view = build_rel.range_view(start, stop, counters=worker)
                return filter_class.build_partial(
                    [
                        view.column(alias, column)
                        for alias, column in definition.build_keys
                    ],
                    geometry,
                    **self._filter_options,
                )

            build_rel.settle_selections()
            partials = self._map_morsels(metrics, ranges, task)
            metrics.filter_builds_parallel += 1
            metrics.filter_partials_built += len(partials)
            return filter_class.merge(
                partials, build_rel.num_rows, **self._filter_options
            )
        key_columns = [
            build_rel.column(alias, column)
            for alias, column in definition.build_keys
        ]
        return create_filter(
            self._filter_kind, key_columns, **self._filter_options
        )

    def _cacheable_filter_key(
        self,
        node: HashJoinNode,
        definition,
        overrides: dict[str, object],
    ) -> tuple | None:
        """Cache key for this join's filter, or None when not reusable.

        Only filters built from a bare table scan are workload-level
        artifacts: any applied bitvector or upstream join would couple
        the filter's contents to the rest of this particular plan.
        """
        if self._filter_cache is None:
            return None
        build = node.build
        if not isinstance(build, ScanNode) or build.applied_bitvectors:
            return None
        from repro.expr.expressions import structural_key
        from repro.filters.cache import filter_cache_key

        predicate = overrides.get(build.alias, build.predicate)
        return filter_cache_key(
            table_name=build.table_name,
            key_columns=tuple(column for _, column in definition.build_keys),
            predicate_key=structural_key(predicate, include_aliases=False),
            filter_kind=self._filter_kind,
            filter_options=self._filter_options,
        )

    def _residual_filter(
        self,
        node: FilterNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        relation = self._run(node.child, metrics, filters, needed, overrides)
        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters, metrics
        )
        record.rows_out = relation.num_rows
        return relation

    def _apply_bitvectors(
        self,
        definitions: list[BitvectorDef],
        relation: Relation,
        record,
        filters: dict[int, BitvectorFilter],
        metrics: ExecutionMetrics,
    ) -> Relation:
        if not definitions:
            return relation
        pruning = self._bitvector_zone_pruning(definitions, relation, filters)
        if self._adaptive_filter_order and len(definitions) > 1:
            from repro.engine.lip import order_filters_adaptively

            # Ordering is decided once on the main thread (sampled pass
            # rates, discounted by each filter's zone-skip fraction);
            # the chosen order is then shared by every morsel.
            definitions = order_filters_adaptively(
                definitions, filters, relation.column_head, relation.num_rows,
                zone_skip=pruning[2] if pruning is not None else None,
            )
        pending_ranges: list[tuple[int, int]] | None = None
        if pruning is not None:
            # Stacked filters are conjunctive, so one combined pruning
            # partition (a morsel skipped by ANY filter contributes
            # nothing) is applied with the first filter's evaluation;
            # later filters see the already-gathered survivors.
            ranges, pruned, _ = pruning
            pending_ranges = self._split_pruned(metrics, ranges, pruned)
        for definition in definitions:
            self._checkpoint(metrics)
            bitvector = filters.get(definition.filter_id)
            if bitvector is None:
                raise ExecutionError(
                    f"bitvector {definition!r} applied before creation; "
                    "plan scheduling is broken"
                )
            record.add("filter_check", relation.num_rows)

            def mask_fn(view, definition=definition, bitvector=bitvector):
                return bitvector.contains(
                    [
                        view.column(alias, column)
                        for alias, column in definition.probe_keys
                    ]
                )

            if pending_ranges is not None:
                selection = self._selection_over_ranges(
                    relation, pending_ranges, metrics, mask_fn
                )
                pending_ranges = None
                relation = self._settle(relation.select_sorted(selection))
                continue
            # Filters are immutable after construction, so per-morsel
            # probes are lock-free reads of one shared structure.
            selection = self._parallel_selection(relation, metrics, mask_fn)
            if selection is not None:
                relation = self._settle(relation.select_sorted(selection))
                continue
            key_columns = [
                relation.column(alias, column)
                for alias, column in definition.probe_keys
            ]
            if self._eager and hasattr(bitvector, "contains_legacy"):
                # Baseline mode: the seed engine's per-probe joint
                # re-factorization instead of the indexed probe.
                mask = bitvector.contains_legacy(key_columns)
            else:
                mask = bitvector.contains(key_columns)
            relation = self._settle(relation.mask(mask))
        return relation

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(
        self,
        node: AggregateNode,
        relation: Relation,
        metrics: ExecutionMetrics,
    ) -> dict[str, np.ndarray]:
        self._checkpoint(metrics)
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        record.add("aggregate", relation.num_rows)

        if node.group_by:
            group_columns = [
                relation.column(ref.alias, ref.column) for ref in node.group_by
            ]
            from repro.util.keycodes import single_table_codes

            codes = (
                single_table_codes(group_columns)
                if relation.num_rows
                else np.array([], dtype=np.int64)
            )
            unique_codes, group_index = np.unique(codes, return_inverse=True)
            num_groups = len(unique_codes)
            # First row index of each group, as a stable representative
            # for emitting the grouping columns.
            first_positions = np.full(num_groups, relation.num_rows, dtype=np.int64)
            if num_groups:
                np.minimum.at(
                    first_positions, group_index, np.arange(relation.num_rows)
                )
            output: dict[str, np.ndarray] = {}
            for ref, values in zip(node.group_by, group_columns):
                output[f"{ref.alias}.{ref.column}"] = values[first_positions]
        else:
            num_groups = 1
            group_index = np.zeros(relation.num_rows, dtype=np.int64)
            output = {}

        for aggregate in node.aggregates:
            label = aggregate.label or str(aggregate)
            if aggregate.function == "count":
                counts = np.bincount(group_index, minlength=num_groups)
                output[label] = counts.astype(np.int64)
                continue
            assert aggregate.argument is not None
            values = relation.column(
                aggregate.argument.alias, aggregate.argument.column
            ).astype(np.float64)
            if aggregate.function == "sum":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                output[label] = sums
            elif aggregate.function == "avg":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                counts = np.bincount(group_index, minlength=num_groups)
                with np.errstate(invalid="ignore", divide="ignore"):
                    output[label] = np.where(counts > 0, sums / counts, np.nan)
            elif aggregate.function in ("min", "max"):
                fill = np.inf if aggregate.function == "min" else -np.inf
                folded = np.full(num_groups, fill)
                ufunc = np.minimum if aggregate.function == "min" else np.maximum
                if relation.num_rows:
                    ufunc.at(folded, group_index, values)
                output[label] = folded
            else:
                raise ExecutionError(
                    f"unsupported aggregate {aggregate.function!r}"
                )
        record.rows_out = num_groups if relation.num_rows or node.group_by else 1

        if node.having is not None:
            out_rows = len(next(iter(output.values()))) if output else 0
            keep = evaluate_predicate(
                node.having,
                lambda alias, column: np.asarray(output[column]),
                out_rows,
            )
            output = {
                label: np.asarray(values)[keep]
                for label, values in output.items()
            }
            record.rows_out = int(np.count_nonzero(keep))
        return output

    # ------------------------------------------------------------------
    # Top-k (ORDER BY ... LIMIT)
    # ------------------------------------------------------------------

    def _topk_aggregates(
        self,
        node: TopKNode,
        aggregates: dict[str, np.ndarray],
        metrics: ExecutionMetrics,
    ) -> dict[str, np.ndarray]:
        """Sort + limit over aggregate output columns (by label)."""
        self._checkpoint(metrics)
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        num_rows = len(next(iter(aggregates.values()))) if aggregates else 0
        record.add("topk", num_rows)
        if node.order_by:
            sort_keys: list[np.ndarray] = [np.arange(num_rows, dtype=np.int64)]
            for key in reversed(node.order_by):
                assert isinstance(key.target, str)
                values = np.asarray(aggregates[key.target])
                sort_keys.append(_order_codes(values, key.ascending))
            order = np.lexsort(sort_keys)
        else:
            order = np.arange(num_rows, dtype=np.int64)
        if node.limit is not None:
            order = order[: node.limit]
        output = {
            label: np.asarray(values)[order]
            for label, values in aggregates.items()
        }
        record.rows_out = len(order)
        return output

    def _topk_relation(
        self,
        node: TopKNode,
        relation: Relation,
        metrics: ExecutionMetrics,
    ) -> Relation:
        """Sort + limit over relation rows.

        The full-sort path orders all rows by ``(keys..., row index)``;
        with a LIMIT and zone maps enabled, morsels whose first-key
        bounds are provably outside the top k are skipped first (the
        clustered-layout early exit).  Skipping is decided with strict
        inequalities against the candidate pool's k-th best first-key
        value, so the surviving candidate set always contains the true
        top k and the final sort is byte-identical to the unpruned one.
        """
        self._checkpoint(metrics)
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        record.add("topk", relation.num_rows)
        limit = node.limit
        if not node.order_by:
            if limit is None:
                record.rows_out = relation.num_rows
                return relation
            selected = np.arange(
                min(limit, relation.num_rows), dtype=np.int64
            )
            result = self._settle(relation.gather(selected))
            record.rows_out = result.num_rows
            return result
        if limit == 0:
            result = self._settle(
                relation.gather(np.array([], dtype=np.int64))
            )
            record.rows_out = 0
            return result
        candidates = None
        if limit is not None and self._zone_maps and relation.num_rows:
            candidates = self._topk_zone_candidates(node, relation, metrics)
        if candidates is None:
            candidates = np.arange(relation.num_rows, dtype=np.int64)
        sort_keys: list[np.ndarray] = [candidates]
        for key in reversed(node.order_by):
            ref = key.target
            assert isinstance(ref, ColumnRef)
            values = np.asarray(relation.column(ref.alias, ref.column))
            sort_keys.append(_order_codes(values[candidates], key.ascending))
        order = np.lexsort(sort_keys)
        selected = candidates[order]
        if limit is not None:
            selected = selected[:limit]
        result = self._settle(relation.gather(selected))
        record.rows_out = result.num_rows
        return result

    def _topk_zone_candidates(
        self,
        node: TopKNode,
        relation: Relation,
        metrics: ExecutionMetrics,
    ) -> np.ndarray | None:
        """Candidate row indices after zone-map top-k morsel skipping.

        Requires the first order key to be a whole base-table column
        (identity provenance — the clustered-layout case).  Morsels are
        visited best-bound first; once the candidate pool holds at
        least ``limit`` rows, a morsel whose bound is *strictly* worse
        than the pool's k-th best first-key value cannot contribute and
        is skipped (counted as ``morsels_pruned`` / ``rows_skipped``).
        Returns ``None`` when nothing can be skipped (callers then sort
        all rows — the identical result, without the bookkeeping).
        """
        first = node.order_by[0]
        ref = first.target
        assert isinstance(ref, ColumnRef)
        source = relation.base_source(ref.alias, ref.column)
        if source is None or source[2] is not None:
            return None
        table_name, column_name, _ = source
        table = self._database.table(table_name)
        if table.num_rows != relation.num_rows:
            return None
        ranges = self._table_ranges(table)
        if len(ranges) < 2:
            return None
        zone = self._zone_map(table_name, column_name)
        bounds = [zone.bounds(index) for index in range(len(ranges))]
        sortable = [
            index
            for index, entry in enumerate(bounds)
            if entry is not None and entry.low is not None
        ]
        if not sortable:
            return None
        # Unordered morsels (no synopsis / all-null) are always kept;
        # visit them first so they never consume a skip decision.
        unordered = [
            index
            for index, entry in enumerate(bounds)
            if entry is None or entry.low is None
        ]
        if first.ascending:
            sortable.sort(key=lambda index: (bounds[index].low, index))
        else:
            sortable.sort(key=lambda index: (bounds[index].high, index))
            sortable.reverse()
        column = np.asarray(table.column(column_name))
        limit = node.limit
        assert limit is not None
        kept: list[int] = []
        pool_parts: list[np.ndarray] = []
        pool_rows = 0
        threshold = None
        for index in unordered + sortable:
            entry = bounds[index]
            if threshold is not None and entry is not None and entry.low is not None:
                try:
                    beyond = (
                        entry.low > threshold
                        if first.ascending
                        else entry.high < threshold
                    )
                except TypeError:
                    beyond = False
                if beyond:
                    metrics.morsels_pruned += 1
                    metrics.rows_skipped += ranges[index][1] - ranges[index][0]
                    continue
            kept.append(index)
            start, stop = ranges[index]
            pool_parts.append(column[start:stop])
            pool_rows += stop - start
            if pool_rows >= limit:
                threshold = _pool_threshold(
                    pool_parts, limit, first.ascending
                )
        if len(kept) == len(ranges):
            return None
        kept_ranges = sorted(ranges[index] for index in kept)
        return np.concatenate(
            [
                np.arange(start, stop, dtype=np.int64)
                for start, stop in kept_ranges
            ]
        )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _result_rows(result) -> int | None:
    """Output-row count of one morsel task's result, when recognisable.

    Selection/gather tasks return an offset array; probe tasks return a
    ``(build_idx, probe_idx)`` pair.  Anything else reports None — the
    morsel span then simply carries no ``rows_out`` attribute.
    """
    if isinstance(result, np.ndarray):
        return int(len(result))
    if (
        isinstance(result, tuple)
        and len(result) == 2
        and isinstance(result[1], np.ndarray)
    ):
        return int(len(result[1]))
    return None


def _morsel_task(fn, start: int, stop: int, worker: ExecutionMetrics,
                 context: ExecutionContext | None):
    """One pool task for ``_map_morsels``: hook, checkpoint, wrap.

    The ``"morsel.task"`` fault site fires *inside* the task body so an
    injected fault travels the exact path an organic worker failure
    does — including the :class:`~repro.errors.MorselTaskError`
    wrapping, which stamps the query name and the morsel's row range
    onto the message and chains the original as ``__cause__``.  Policy
    errors (:class:`~repro.errors.ResilienceError` — a deadline
    tripping inside the task, or a sibling's cancellation) pass through
    unwrapped: they already carry their own context and the service
    retry whitelist must see them bare.
    """

    def run():
        if context is not None:
            context.check()
        try:
            fault_point("morsel.task")
            return fn(start, stop, worker)
        except ResilienceError:
            raise
        except Exception as exc:
            query = context.query if context is not None else "query"
            raise MorselTaskError(
                f"morsel task for query {query!r} rows [{start}:{stop}) "
                f"failed: {type(exc).__name__}: {exc}"
            ) from exc

    return run


def _drop_hidden(
    node: AggregateNode, aggregates: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Remove aggregates that exist only for HAVING / ORDER BY."""
    hidden = {
        aggregate.output_label
        for aggregate in node.aggregates
        if aggregate.hidden
    }
    if not hidden:
        return aggregates
    return {
        label: values
        for label, values in aggregates.items()
        if label not in hidden
    }


def _order_codes(values: np.ndarray, ascending: bool) -> np.ndarray:
    """Sort codes for one ORDER BY key (lower code = earlier output).

    Codes come from an ascending factorization, so arbitrary dtypes
    (including strings) sort and reverse uniformly.  NaN sorts last in
    both directions (SQL ``NULLS LAST``), which also keeps the zone-map
    skip test sound for DESC keys.
    """
    uniques, codes = np.unique(values, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    if ascending:
        return codes
    if uniques.dtype.kind == "f" and len(uniques):
        num_nan = int(np.count_nonzero(np.isnan(uniques)))
        if num_nan:
            first_nan = len(uniques) - num_nan
            return np.where(codes >= first_nan, codes - first_nan + 1, -codes)
    return -codes


def _pool_threshold(pool_parts: list[np.ndarray], limit: int, ascending: bool):
    """The candidate pool's k-th best first-key value.

    NaN counts as worst in either direction (matching ``_order_codes``),
    so a NaN-dominated pool yields an infinite threshold and the skip
    test simply never fires — conservative, never unsound.
    """
    values = pool_parts[0] if len(pool_parts) == 1 else np.concatenate(pool_parts)
    if values.dtype.kind == "f":
        worst = np.inf if ascending else -np.inf
        values = np.where(np.isnan(values), worst, values)
    ordered = np.sort(values)
    if ascending:
        return ordered[limit - 1]
    return ordered[len(ordered) - limit]


def _match_keys(
    build_keys: list[np.ndarray], probe_keys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (build_row, probe_row) index pairs, vectorized.

    Sort-based equi-join: encode both key sets over a shared domain,
    sort the build side, binary-search each probe key, and expand the
    per-probe match ranges.
    """
    if len(build_keys[0]) == 0 or len(probe_keys[0]) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    build_codes, probe_codes = joint_codes(build_keys, probe_keys)
    return _expand_matches(build_codes, probe_codes)


# Counting-sort matching is used when the code domain is dense enough
# for its histogram to stay cache-resident and worth the allocation
# (shared cost model: repro.util.keycodes.dense_table_worthwhile).
_DENSE_DOMAIN_CAP = 1 << 20


class _BuildMatcher:
    """Immutable build-side match structure shared across probe morsels.

    Construction sorts the build codes once (and, for dense dictionary
    domains, builds the counting-sort histogram).  :meth:`match` is a
    pure read — every morsel worker probes the same structure
    lock-free, the single-build-then-shared contract the parallel hash
    join relies on.
    """

    __slots__ = ("_order", "_sorted", "_histogram", "_range_ends")

    def __init__(self, build_codes: np.ndarray, domain: int | None) -> None:
        self._order = np.argsort(build_codes, kind="stable")
        if domain is not None and dense_table_worthwhile(
            domain, len(build_codes), _DENSE_DOMAIN_CAP
        ):
            self._sorted = None
            self._histogram = np.bincount(build_codes, minlength=domain)
            self._range_ends = np.cumsum(self._histogram)
        else:
            self._sorted = build_codes[self._order]
            self._histogram = None
            self._range_ends = None

    def match(self, probe_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All matching (build_row, probe_row) pairs for these probes.

        Negative probe codes mark values absent from the build domain;
        they produce empty match ranges naturally.  With a dense
        histogram the per-probe match ranges are O(probe rows) gathers;
        otherwise two binary-search passes over the sorted build side.
        ``probe_idx`` is ascending, and per probe row the build matches
        come in stable sorted order — so concatenating morsel results
        equals one whole-relation call.
        """
        if len(self._order) == 0 or len(probe_codes) == 0:
            empty = np.array([], dtype=np.int64)
            return empty, empty
        if self._histogram is not None:
            valid = probe_codes >= 0
            clipped = np.where(valid, probe_codes, 0)
            counts = np.where(valid, self._histogram[clipped], 0)
            lo = self._range_ends[clipped] - self._histogram[clipped]
        else:
            lo = np.searchsorted(self._sorted, probe_codes, side="left")
            hi = np.searchsorted(self._sorted, probe_codes, side="right")
            counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.array([], dtype=np.int64)
            return empty, empty
        probe_idx = np.repeat(
            np.arange(len(probe_codes), dtype=np.int64), counts
        )
        starts = np.repeat(lo, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        build_idx = self._order[starts + offsets]
        return build_idx, probe_idx


def _expand_matches(
    build_codes: np.ndarray,
    probe_codes: np.ndarray,
    domain: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Match ranges for pre-encoded keys (equal codes <=> equal tuples).

    Serial entry point: builds the match structure and probes the whole
    probe side in one call (see :class:`_BuildMatcher`).
    """
    if len(build_codes) == 0 or len(probe_codes) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    return _BuildMatcher(build_codes, domain).match(probe_codes)


def _needed_columns(
    plan: PlanNode, overrides: dict[str, object] | None = None
) -> dict[str, set[str]]:
    """Columns each alias must materialize for this plan."""
    needed: dict[str, set[str]] = {}
    overrides = overrides or {}

    def want(alias: str, column: str) -> None:
        needed.setdefault(alias, set()).add(column)

    for node in plan.walk():
        if isinstance(node, ScanNode):
            predicate = overrides.get(node.alias, node.predicate)
            if predicate is not None:
                for alias, column in referenced_columns(predicate):
                    want(alias, column)
        if isinstance(node, HashJoinNode):
            for alias, column in node.build_keys + node.probe_keys:
                want(alias, column)
        for definition in node.applied_bitvectors:
            for alias, column in definition.probe_keys:
                want(alias, column)
        if isinstance(node, AggregateNode):
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    want(aggregate.argument.alias, aggregate.argument.column)
            for ref in node.group_by:
                want(ref.alias, ref.column)
        if isinstance(node, TopKNode):
            for key in node.order_by:
                target = key.target
                if isinstance(target, ColumnRef) and target.alias != OUTPUT_ALIAS:
                    want(target.alias, target.column)
            for ref in node.columns:
                want(ref.alias, ref.column)
        if isinstance(node, ScanNode):
            needed.setdefault(node.alias, set())
    return needed
