"""Plan executor.

Recursively evaluates a physical plan tree.  For every hash join the
*build* child executes first; if the join creates a bitvector filter it
is registered before the *probe* child runs, so every application site
(which Algorithm 1 guarantees lies inside the probe subtree) finds its
filter populated — the same scheduling property real engines rely on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine.metrics import (
    ExecutionMetrics,
    OPERATOR_KIND_JOIN,
    OPERATOR_KIND_LEAF,
    OPERATOR_KIND_OTHER,
)
from repro.engine.relation import Relation
from repro.errors import ExecutionError
from repro.expr.eval import evaluate_predicate
from repro.expr.expressions import referenced_columns
from repro.filters.base import BitvectorFilter
from repro.filters.registry import create_filter
from repro.plan.nodes import (
    AggregateNode,
    BitvectorDef,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
)
from repro.storage.database import Database
from repro.util.keycodes import joint_codes


@dataclasses.dataclass
class ExecutionResult:
    """Result of executing one plan: output + metrics."""

    relation: Relation
    aggregates: dict[str, np.ndarray] | None
    metrics: ExecutionMetrics

    @property
    def num_rows(self) -> int:
        if self.aggregates is not None:
            first = next(iter(self.aggregates.values()), None)
            return 0 if first is None else len(first)
        return self.relation.num_rows

    def scalar(self, label: str) -> object:
        """Value of a single-row aggregate output column."""
        if self.aggregates is None:
            raise ExecutionError("plan has no aggregate output")
        values = self.aggregates[label]
        if len(values) != 1:
            raise ExecutionError(f"aggregate {label!r} is not scalar")
        return values[0]


class Executor:
    """Executes physical plans against a database.

    Parameters
    ----------
    database:
        Table source.
    filter_kind:
        Which bitvector implementation joins create: ``"exact"``
        (default — the no-false-positives filter the theory assumes),
        ``"bloom"``, or ``"blocked_bloom"``.
    filter_options:
        Extra keyword arguments for the filter constructor (e.g.
        ``bits_per_key``).
    filter_cache:
        Optional :class:`~repro.filters.cache.BitvectorFilterCache`
        shared across executions; joins whose build side is a bare scan
        reuse previously built filters instead of rebuilding them.
    """

    def __init__(
        self,
        database: Database,
        filter_kind: str = "exact",
        filter_options: dict | None = None,
        adaptive_filter_order: bool = False,
        filter_cache=None,
    ) -> None:
        self._database = database
        self._filter_kind = filter_kind
        self._filter_options = dict(filter_options or {})
        # LIP-style runtime reordering of stacked filters (see
        # repro.engine.lip); off by default to match the paper's engine.
        self._adaptive_filter_order = adaptive_filter_order
        self._filter_cache = filter_cache

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        predicate_overrides: dict[str, object] | None = None,
    ) -> ExecutionResult:
        """Execute a plan.

        ``predicate_overrides`` maps a relation alias to the predicate
        its scan should evaluate *instead of* the one baked into the
        plan — how the service layer re-executes a cached plan with
        fresh constants without mutating the shared tree.  All per-
        execution state lives in locals, so one executor may run the
        same plan concurrently from many threads.
        """
        metrics = ExecutionMetrics()
        filters: dict[int, BitvectorFilter] = {}
        overrides = predicate_overrides or {}
        needed = _needed_columns(plan, overrides)
        aggregates: dict[str, np.ndarray] | None = None
        if isinstance(plan, AggregateNode):
            relation = self._run(plan.child, metrics, filters, needed, overrides)
            aggregates = self._aggregate(plan, relation, metrics)
        else:
            relation = self._run(plan, metrics, filters, needed, overrides)
        return ExecutionResult(relation=relation, aggregates=aggregates,
                               metrics=metrics)

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    def _run(
        self,
        node: PlanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        if isinstance(node, ScanNode):
            return self._scan(node, metrics, filters, needed, overrides)
        if isinstance(node, HashJoinNode):
            return self._hash_join(node, metrics, filters, needed, overrides)
        if isinstance(node, FilterNode):
            return self._residual_filter(node, metrics, filters, needed, overrides)
        if isinstance(node, AggregateNode):
            raise ExecutionError("aggregate must be the plan root")
        raise ExecutionError(f"cannot execute node {node.label}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _scan(
        self,
        node: ScanNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_LEAF)
        table = self._database.table(node.table_name)
        columns = {
            (node.alias, name): table.column(name)
            for name in sorted(needed.get(node.alias, set()))
        }
        relation = Relation(columns, table.num_rows)
        record.add("scan", table.num_rows)

        predicate = overrides.get(node.alias, node.predicate)
        if predicate is not None:
            mask = evaluate_predicate(
                predicate, relation.provider, relation.num_rows
            )
            relation = relation.mask(mask)

        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters
        )
        record.rows_out = relation.num_rows
        return relation

    def _hash_join(
        self,
        node: HashJoinNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_JOIN)

        build_rel = self._run(node.build, metrics, filters, needed, overrides)
        record.add("build", build_rel.num_rows)

        if node.created_bitvector is not None:
            definition = node.created_bitvector
            key_columns = [
                build_rel.column(alias, column)
                for alias, column in definition.build_keys
            ]
            cache_key = self._cacheable_filter_key(node, definition, overrides)
            if cache_key is not None:
                bitvector, was_cached = self._filter_cache.get_or_build(
                    cache_key,
                    lambda: create_filter(
                        self._filter_kind, key_columns, **self._filter_options
                    ),
                )
                filters[definition.filter_id] = bitvector
                if was_cached:
                    metrics.filter_cache_hits += 1
                else:
                    metrics.filter_cache_misses += 1
                    record.add("filter_insert", build_rel.num_rows)
            else:
                filters[definition.filter_id] = create_filter(
                    self._filter_kind, key_columns, **self._filter_options
                )
                record.add("filter_insert", build_rel.num_rows)

        probe_rel = self._run(node.probe, metrics, filters, needed, overrides)
        record.add("probe", probe_rel.num_rows)

        build_keys = [
            build_rel.column(alias, column) for alias, column in node.build_keys
        ]
        probe_keys = [
            probe_rel.column(alias, column) for alias, column in node.probe_keys
        ]
        build_idx, probe_idx = _match_keys(build_keys, probe_keys)
        result = probe_rel.merged_with(build_rel, probe_idx, build_idx)
        record.add("output", result.num_rows)
        record.rows_out = result.num_rows
        return result

    def _cacheable_filter_key(
        self,
        node: HashJoinNode,
        definition,
        overrides: dict[str, object],
    ) -> tuple | None:
        """Cache key for this join's filter, or None when not reusable.

        Only filters built from a bare table scan are workload-level
        artifacts: any applied bitvector or upstream join would couple
        the filter's contents to the rest of this particular plan.
        """
        if self._filter_cache is None:
            return None
        build = node.build
        if not isinstance(build, ScanNode) or build.applied_bitvectors:
            return None
        from repro.expr.expressions import structural_key
        from repro.filters.cache import filter_cache_key

        predicate = overrides.get(build.alias, build.predicate)
        return filter_cache_key(
            table_name=build.table_name,
            key_columns=tuple(column for _, column in definition.build_keys),
            predicate_key=structural_key(predicate, include_aliases=False),
            filter_kind=self._filter_kind,
            filter_options=self._filter_options,
        )

    def _residual_filter(
        self,
        node: FilterNode,
        metrics: ExecutionMetrics,
        filters: dict[int, BitvectorFilter],
        needed: dict[str, set[str]],
        overrides: dict[str, object],
    ) -> Relation:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        relation = self._run(node.child, metrics, filters, needed, overrides)
        relation = self._apply_bitvectors(
            node.applied_bitvectors, relation, record, filters
        )
        record.rows_out = relation.num_rows
        return relation

    def _apply_bitvectors(
        self,
        definitions: list[BitvectorDef],
        relation: Relation,
        record,
        filters: dict[int, BitvectorFilter],
    ) -> Relation:
        if self._adaptive_filter_order and len(definitions) > 1:
            from repro.engine.lip import order_filters_adaptively

            definitions = order_filters_adaptively(
                definitions, filters, relation.column, relation.num_rows
            )
        for definition in definitions:
            bitvector = filters.get(definition.filter_id)
            if bitvector is None:
                raise ExecutionError(
                    f"bitvector {definition!r} applied before creation; "
                    "plan scheduling is broken"
                )
            key_columns = [
                relation.column(alias, column)
                for alias, column in definition.probe_keys
            ]
            record.add("filter_check", relation.num_rows)
            mask = bitvector.contains(key_columns)
            relation = relation.mask(mask)
        return relation

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(
        self,
        node: AggregateNode,
        relation: Relation,
        metrics: ExecutionMetrics,
    ) -> dict[str, np.ndarray]:
        record = metrics.node(node.node_id, node.label, OPERATOR_KIND_OTHER)
        record.add("aggregate", relation.num_rows)

        if node.group_by:
            group_columns = [
                relation.column(ref.alias, ref.column) for ref in node.group_by
            ]
            from repro.util.keycodes import single_table_codes

            codes = (
                single_table_codes(group_columns)
                if relation.num_rows
                else np.array([], dtype=np.int64)
            )
            unique_codes, group_index = np.unique(codes, return_inverse=True)
            num_groups = len(unique_codes)
            # First row index of each group, as a stable representative
            # for emitting the grouping columns.
            first_positions = np.full(num_groups, relation.num_rows, dtype=np.int64)
            if num_groups:
                np.minimum.at(
                    first_positions, group_index, np.arange(relation.num_rows)
                )
            output: dict[str, np.ndarray] = {}
            for ref, values in zip(node.group_by, group_columns):
                output[f"{ref.alias}.{ref.column}"] = values[first_positions]
        else:
            num_groups = 1
            group_index = np.zeros(relation.num_rows, dtype=np.int64)
            output = {}

        for aggregate in node.aggregates:
            label = aggregate.label or str(aggregate)
            if aggregate.function == "count":
                counts = np.bincount(group_index, minlength=num_groups)
                output[label] = counts.astype(np.int64)
                continue
            assert aggregate.argument is not None
            values = relation.column(
                aggregate.argument.alias, aggregate.argument.column
            ).astype(np.float64)
            if aggregate.function == "sum":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                output[label] = sums
            elif aggregate.function == "avg":
                sums = np.bincount(
                    group_index, weights=values, minlength=num_groups
                )
                counts = np.bincount(group_index, minlength=num_groups)
                with np.errstate(invalid="ignore", divide="ignore"):
                    output[label] = np.where(counts > 0, sums / counts, np.nan)
            elif aggregate.function in ("min", "max"):
                fill = np.inf if aggregate.function == "min" else -np.inf
                folded = np.full(num_groups, fill)
                ufunc = np.minimum if aggregate.function == "min" else np.maximum
                if relation.num_rows:
                    ufunc.at(folded, group_index, values)
                output[label] = folded
            else:
                raise ExecutionError(
                    f"unsupported aggregate {aggregate.function!r}"
                )
        record.rows_out = num_groups if relation.num_rows or node.group_by else 1
        return output


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _match_keys(
    build_keys: list[np.ndarray], probe_keys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (build_row, probe_row) index pairs, vectorized.

    Sort-based equi-join: encode both key sets over a shared domain,
    sort the build side, binary-search each probe key, and expand the
    per-probe match ranges.
    """
    if len(build_keys[0]) == 0 or len(probe_keys[0]) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    build_codes, probe_codes = joint_codes(build_keys, probe_keys)
    order = np.argsort(build_codes, kind="stable")
    sorted_codes = build_codes[order]
    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(np.arange(len(probe_codes), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_idx = order[starts + offsets]
    return build_idx, probe_idx


def _needed_columns(
    plan: PlanNode, overrides: dict[str, object] | None = None
) -> dict[str, set[str]]:
    """Columns each alias must materialize for this plan."""
    needed: dict[str, set[str]] = {}
    overrides = overrides or {}

    def want(alias: str, column: str) -> None:
        needed.setdefault(alias, set()).add(column)

    for node in plan.walk():
        if isinstance(node, ScanNode):
            predicate = overrides.get(node.alias, node.predicate)
            if predicate is not None:
                for alias, column in referenced_columns(predicate):
                    want(alias, column)
        if isinstance(node, HashJoinNode):
            for alias, column in node.build_keys + node.probe_keys:
                want(alias, column)
        for definition in node.applied_bitvectors:
            for alias, column in definition.probe_keys:
                want(alias, column)
        if isinstance(node, AggregateNode):
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    want(aggregate.argument.alias, aggregate.argument.column)
            for ref in node.group_by:
                want(ref.alias, ref.column)
        if isinstance(node, ScanNode):
            needed.setdefault(node.alias, set())
            # guarantee at least one column so row counts are defined
            if not needed[node.alias]:
                pass
    return needed
