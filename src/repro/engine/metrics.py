"""Per-operator execution metrics.

Each executed plan node records the tuple counts of its cost-bearing
components.  Metered CPU is the dot product of those counts with the
:class:`~repro.cost.constants.CostConstants` weights — the same model
the optimizer estimates against, evaluated on actual counts.
"""

from __future__ import annotations

import dataclasses

from repro.cost.constants import CostConstants, DEFAULT_COSTS

_COMPONENTS = (
    "scan",
    "build",
    "probe",
    "output",
    "filter_check",
    "filter_insert",
    "aggregate",
    "topk",
)

# Operator classes for the Figure 9 breakdown.
OPERATOR_KIND_LEAF = "leaf"
OPERATOR_KIND_JOIN = "join"
OPERATOR_KIND_OTHER = "other"


@dataclasses.dataclass
class NodeMetrics:
    """Metrics for one plan node."""

    node_id: int
    label: str
    kind: str
    rows_out: int = 0
    components: dict[str, float] = dataclasses.field(
        default_factory=lambda: {name: 0.0 for name in _COMPONENTS}
    )
    # Inclusive wall-clock seconds spent producing this node's output
    # (children included).  Only filled while a tracer is armed — the
    # disarmed path never reads a clock per node.
    wall_seconds: float = 0.0

    def add(self, component: str, count: float) -> None:
        self.components[component] += count

    def cpu(self, constants: CostConstants = DEFAULT_COSTS) -> float:
        return (
            self.components["scan"] * constants.scan
            + self.components["build"] * constants.build
            + self.components["probe"] * constants.probe
            + self.components["output"] * constants.output
            + self.components["filter_check"] * constants.filter_check
            + self.components["filter_insert"] * constants.filter_insert
            + self.components["aggregate"] * constants.aggregate
            + self.components["topk"] * constants.topk
        )


class ExecutionMetrics:
    """Aggregated metrics for one plan execution."""

    def __init__(self) -> None:
        self._nodes: dict[int, NodeMetrics] = {}
        # Cross-query filter cache activity during this execution
        # (see repro.filters.cache); zero when no cache is attached.
        self.filter_cache_hits = 0
        self.filter_cache_misses = 0
        # Zero-copy accounting (see repro.engine.relation): how many
        # rows/bytes were actually gathered into materialized columns.
        # The eager baseline copies every column at every row-set
        # operation; the lazy path only pays for columns that are read.
        self.rows_copied = 0
        self.bytes_gathered = 0
        # Join-key encodings answered from table-resident dictionary
        # indexes vs. falling back to per-call joint factorization.
        self.dictionary_hits = 0
        self.dictionary_misses = 0
        # Zone-map data skipping (see repro.storage.zonemaps): whole
        # morsels whose [min, max] provably cannot satisfy a predicate,
        # pass a bitvector filter, or match any join key are dropped
        # before any row is read.  rows_skipped counts the rows those
        # morsels would otherwise have fed through the kernels — both
        # the pruned ones and the constant-morsel short-circuits below.
        self.morsels_pruned = 0
        self.rows_skipped = 0
        # Sorted-band fast path (see the executor's scan band search):
        # morsels answered by binary-searching a clustered column to the
        # predicate's value band instead of per-morsel min/max checks.
        self.morsels_band_searched = 0
        # Succinct selection accounting (see repro.engine.relation):
        # bytes of selection state actually created by row-filter
        # operations vs. what dense int64 position vectors would have
        # held for the same survivors.  The gap is the tentpole's
        # resident-memory win between operators.
        self.selection_bytes = 0
        self.selection_bytes_dense = 0
        # Constant-morsel short-circuits: morsels whose zone map proves
        # the scan predicate *true* for every row, kept whole without a
        # single row-wise evaluation (their rows also land in
        # rows_skipped: skipped work, not skipped output).
        self.morsels_short_circuited = 0
        # Parallel build-side accounting (see the executor's
        # partitioned filter builds): how many filters were built via
        # the partition-then-merge path, how many partial builds ran on
        # the pool, and the wall-clock the build phase cost (serial
        # builds included, cache hits excluded).
        self.filter_builds_parallel = 0
        self.filter_partials_built = 0
        self.filter_build_seconds = 0.0
        # Per-execution adaptive morsel sizer (see
        # repro.storage.partition.AdaptiveMorselSizer), attached by the
        # executor at the top of execute() when adaptive sizing is on.
        # Rides on the metrics object because that is the one
        # per-execution state threaded through every operator; worker
        # metrics keep the default None and never resize anything.
        self.morsel_sizer = None
        # Per-query resilience context (repro.engine.context), attached
        # by the executor at the top of execute() — same reasoning as
        # the sizer: the metrics object is the per-execution state every
        # operator already sees.  None (the default, and for worker
        # metrics) keeps every checkpoint a single None test.
        self.context = None
        # Optional repro.obs.Tracer, attached by the executor when the
        # caller opted into tracing.  Same pattern as context/sizer:
        # every instrumented site is guarded by `metrics.tracer is not
        # None`, so the disarmed path costs one attribute load.  Worker
        # metrics stay None; morsel spans are opened by the task
        # wrapper with an explicit parent id instead.
        self.tracer = None

    def count_copy(self, rows: int, nbytes: int) -> None:
        """Record one column materialization (called by Relation)."""
        self.rows_copied += int(rows)
        self.bytes_gathered += int(nbytes)

    def count_selection(self, nbytes: int, dense_nbytes: int) -> None:
        """Record one selection structure creation (called by Relation).

        ``nbytes`` is what the chosen representation holds resident
        (packed words for bitmaps, the index array otherwise);
        ``dense_nbytes`` is the int64 position vector equivalent.
        """
        self.selection_bytes += int(nbytes)
        self.selection_bytes_dense += int(dense_nbytes)

    def merge_counters(self, worker: "ExecutionMetrics") -> None:
        """Fold one morsel worker's flat counters into this metrics.

        Parallel regions hand each worker a private ``ExecutionMetrics``
        so counter updates never race; the executor merges them on the
        main thread after the barrier.  Only the flat counters move —
        per-node component counts are recorded by the main thread, which
        sees whole-relation row counts regardless of morsel shape.
        """
        self.rows_copied += worker.rows_copied
        self.bytes_gathered += worker.bytes_gathered
        self.dictionary_hits += worker.dictionary_hits
        self.dictionary_misses += worker.dictionary_misses
        self.filter_cache_hits += worker.filter_cache_hits
        self.filter_cache_misses += worker.filter_cache_misses
        self.morsels_pruned += worker.morsels_pruned
        self.rows_skipped += worker.rows_skipped
        self.morsels_band_searched += worker.morsels_band_searched
        self.selection_bytes += worker.selection_bytes
        self.selection_bytes_dense += worker.selection_bytes_dense
        self.morsels_short_circuited += worker.morsels_short_circuited
        self.filter_builds_parallel += worker.filter_builds_parallel
        self.filter_partials_built += worker.filter_partials_built
        self.filter_build_seconds += worker.filter_build_seconds

    def add_wall(self, node_id: int, seconds: float) -> None:
        """Accumulate inclusive wall time on a node (tracer-armed only)."""
        record = self._nodes.get(node_id)
        if record is not None:
            record.wall_seconds += seconds

    def node(self, node_id: int, label: str, kind: str) -> NodeMetrics:
        metrics = self._nodes.get(node_id)
        if metrics is None:
            metrics = NodeMetrics(node_id=node_id, label=label, kind=kind)
            self._nodes[node_id] = metrics
        return metrics

    @property
    def nodes(self) -> list[NodeMetrics]:
        return list(self._nodes.values())

    def rows_out(self, node_id: int) -> int:
        return self._nodes[node_id].rows_out

    def metered_cpu(self, constants: CostConstants = DEFAULT_COSTS) -> float:
        """Total metered CPU across all operators."""
        return sum(node.cpu(constants) for node in self._nodes.values())

    def tuples_by_kind(self) -> dict[str, int]:
        """Total tuples output per operator class (Figure 9's quantity)."""
        totals = {
            OPERATOR_KIND_LEAF: 0,
            OPERATOR_KIND_JOIN: 0,
            OPERATOR_KIND_OTHER: 0,
        }
        for node in self._nodes.values():
            totals[node.kind] += node.rows_out
        return totals

    def total_tuples(self) -> int:
        return sum(node.rows_out for node in self._nodes.values())

    def component_totals(self) -> dict[str, float]:
        totals = {name: 0.0 for name in _COMPONENTS}
        for node in self._nodes.values():
            for name, value in node.components.items():
                totals[name] += value
        return totals

    def cardinality_annotations(self) -> dict[int, str]:
        """Node annotations for :func:`repro.plan.display.format_plan`."""
        return {
            node.node_id: f"{node.rows_out} rows / cpu {node.cpu():.0f}"
            for node in self._nodes.values()
        }
