"""Per-query execution context: deadlines, cancellation, budgets.

The resilience substrate the service tier sits on.  One
:class:`ExecutionContext` travels with a query through optimization and
execution; engine code calls its checkpoints at natural task boundaries
(plan-node dispatch, morsel tasks, filter-build partitions, optimizer
enumeration steps).  Everything here is *cooperative*: nothing is ever
interrupted mid-kernel, so a query that trips a limit always leaves the
shared worker pool, plan cache, and filter cache in a clean state.

Design constraints:

* **Zero overhead when disabled.**  The default context is ``None``
  everywhere; hot paths pay one attribute load and a ``None`` test.
  An armed checkpoint is one monotonic-clock read and two compares.
* **First failure wins.**  The deadline check runs before the
  cancellation check, so every worker that observes an expired
  deadline raises :class:`~repro.errors.QueryTimeout` itself; the
  token exists to short-circuit *siblings* of a failed task, and the
  barrier prefers root causes over secondary
  :class:`~repro.errors.QueryCancelled` signals.
* **Budgets meter real work.**  :class:`ResourceBudget` is enforced
  against the engine's existing ``rows_copied`` / ``bytes_gathered``
  counters — the same accounting the zero-copy benchmarks report — so
  a breach means actual materialization happened, not an estimate.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.errors import QueryCancelled, QueryTimeout, ResourceExhausted


class Deadline:
    """An absolute wall-clock limit, compared against a monotonic clock.

    >>> d = Deadline.after(60.0)
    >>> d.expired()
    False
    >>> d.remaining() <= 60.0
    True
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float, *, start: float | None = None) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = float(seconds)
        began = time.monotonic() if start is None else start
        self._expires_at = began + self.seconds

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.seconds:.3f}s, {self.remaining():.3f}s left)"


class CancelToken:
    """Thread-safe cooperative cancellation flag shared by one query.

    ``cancel()`` is idempotent and records only the *first* reason —
    the root cause a post-mortem wants.  Reading :attr:`cancelled` is a
    single attribute load (no lock), cheap enough for per-morsel
    checks.
    """

    __slots__ = ("_lock", "_cancelled", "_reason")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str | None:
        return self._reason


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """Per-query caps on materialized work.

    Enforced against :class:`~repro.engine.metrics.ExecutionMetrics`
    counters at checkpoint boundaries: ``max_rows_copied`` bounds rows
    gathered into materialized columns, ``max_bytes_gathered`` bounds
    the bytes those gathers moved.  ``None`` disables a cap.
    """

    max_rows_copied: int | None = None
    max_bytes_gathered: int | None = None

    def breach(self, metrics) -> str | None:
        """Description of the first breached cap, or ``None``."""
        if (
            self.max_rows_copied is not None
            and metrics.rows_copied > self.max_rows_copied
        ):
            return (
                f"rows_copied {metrics.rows_copied} exceeds budget "
                f"{self.max_rows_copied}"
            )
        if (
            self.max_bytes_gathered is not None
            and metrics.bytes_gathered > self.max_bytes_gathered
        ):
            return (
                f"bytes_gathered {metrics.bytes_gathered} exceeds budget "
                f"{self.max_bytes_gathered}"
            )
        return None


class ExecutionContext:
    """Everything one query carries for resilience enforcement.

    Parameters
    ----------
    query:
        Name used in error messages and metrics.
    deadline:
        A :class:`Deadline`, or a float of seconds (converted with
        :meth:`Deadline.after`), or ``None`` (no wall-clock limit).
    budget:
        A :class:`ResourceBudget` or ``None`` (no caps).
    cancel_token:
        Shared token; created fresh when omitted.
    """

    __slots__ = ("query", "deadline", "budget", "cancel_token")

    def __init__(
        self,
        query: str = "query",
        deadline: Deadline | float | None = None,
        budget: ResourceBudget | None = None,
        cancel_token: CancelToken | None = None,
    ) -> None:
        self.query = query
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline.after(float(deadline))
        self.deadline = deadline
        self.budget = budget
        self.cancel_token = cancel_token if cancel_token is not None else CancelToken()

    @property
    def enabled(self) -> bool:
        """Whether any enforcement is armed (contexts with nothing to
        enforce can be dropped entirely, restoring the zero-cost path)."""
        return self.deadline is not None or self.budget is not None

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; every later checkpoint raises
        :class:`~repro.errors.QueryCancelled`."""
        self.cancel_token.cancel(reason)

    def check(self) -> None:
        """Deadline + cancellation checkpoint (raises on violation).

        Deadline first: a worker that finds the clock expired raises
        :class:`~repro.errors.QueryTimeout` itself (and trips the token
        for its siblings) rather than reporting a derived cancellation.
        """
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            overshoot = -deadline.remaining()
            self.cancel_token.cancel(
                f"deadline of {deadline.seconds:.3f}s exceeded"
            )
            raise QueryTimeout(
                f"query {self.query!r} exceeded its deadline of "
                f"{deadline.seconds:.3f}s (by {overshoot:.3f}s)"
            )
        token = self.cancel_token
        if token.cancelled:
            raise QueryCancelled(
                f"query {self.query!r} cancelled: {token.reason}"
            )

    def check_budget(self, metrics) -> None:
        """Resource-budget checkpoint against live counters."""
        budget = self.budget
        if budget is None:
            return
        breach = budget.breach(metrics)
        if breach is not None:
            self.cancel_token.cancel(f"resource budget breached: {breach}")
            raise ResourceExhausted(
                f"query {self.query!r} breached its resource budget: {breach}"
            )

    def checkpoint(self, metrics) -> None:
        """The full per-boundary check: deadline, cancellation, budget."""
        self.check()
        self.check_budget(metrics)
