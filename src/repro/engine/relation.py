"""Runtime relation: a batch of alias-qualified columns."""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


class Relation:
    """Columns keyed by ``(alias, column)``, all of equal length.

    The intermediate data structure flowing between operators.  Gather
    operations produce new relations; the originals stay untouched.
    """

    def __init__(self, columns: dict[tuple[str, str], np.ndarray], num_rows: int) -> None:
        self.columns = columns
        self.num_rows = num_rows

    @classmethod
    def empty(cls) -> "Relation":
        return cls({}, 0)

    def column(self, alias: str, name: str) -> np.ndarray:
        try:
            return self.columns[(alias, name)]
        except KeyError:
            raise ExecutionError(
                f"column {alias}.{name} not present in relation "
                f"(have {sorted(self.columns)})"
            ) from None

    def provider(self, alias: str, name: str) -> np.ndarray:
        """Column provider signature for the expression evaluator."""
        return self.column(alias, name)

    def gather(self, indices: np.ndarray) -> "Relation":
        return Relation(
            {key: values[indices] for key, values in self.columns.items()},
            int(len(indices)),
        )

    def mask(self, mask: np.ndarray) -> "Relation":
        return self.gather(np.flatnonzero(mask))

    def merged_with(self, other: "Relation", self_idx: np.ndarray,
                    other_idx: np.ndarray) -> "Relation":
        """Join-style merge: gather self by ``self_idx`` and other by
        ``other_idx``, concatenating the column sets."""
        columns: dict[tuple[str, str], np.ndarray] = {}
        for key, values in self.columns.items():
            columns[key] = values[self_idx]
        for key, values in other.columns.items():
            if key in columns:
                raise ExecutionError(f"duplicate column {key} in join")
            columns[key] = values[other_idx]
        return Relation(columns, int(len(self_idx)))
