"""Runtime relation: a lazy, zero-copy batch of alias-qualified columns.

A :class:`Relation` is a *view*: base column arrays plus an int64
selection vector.  ``mask``/``gather``/``merged_with`` compose selection
indices — O(rows) int64 work regardless of column count — instead of
copying every column the way an eager engine would.  A column is
materialized (``base[selection]``) only when something actually reads
it: join-key encoding, predicate evaluation, aggregate input, or the
final output.  Materialized columns are cached per view, and the copy
cost is reported to :class:`~repro.engine.metrics.ExecutionMetrics`
(``rows_copied`` / ``bytes_gathered``) so benchmarks can prove that
filter applications no longer gather untouched columns.

Columns remember their *provenance* — the ``(table, column)`` they were
scanned from.  Because selections compose without rewriting base arrays,
provenance survives arbitrarily many filters and joins, which lets the
executor encode join keys through the table-resident dictionary indexes
(:meth:`repro.storage.database.Database.dictionary`) instead of
re-factorizing per query.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError


class _ColumnGroup:
    """A set of equally-selected columns sharing one selection vector.

    ``base`` maps ``(alias, column)`` to a base array; ``selection`` is
    ``None`` (identity: the view is the base rows themselves), a
    contiguous ``slice`` (a morsel: the view is one row range of the
    base, materializable as a numpy view without copying), or an int64
    index array into the base arrays.  All groups of one relation
    describe the same number of rows.
    """

    __slots__ = ("base", "sources", "selection")

    def __init__(
        self,
        base: dict[tuple[str, str], np.ndarray],
        sources: dict[tuple[str, str], tuple[str, str]],
        selection: np.ndarray | slice | None,
    ) -> None:
        self.base = base
        self.sources = sources
        self.selection = selection

    def compose(self, indices: np.ndarray) -> "_ColumnGroup":
        """Group viewing ``self`` restricted to ``indices`` (no copies
        of data columns — only the int64 selection is gathered)."""
        if self.selection is None:
            selection = indices
        elif isinstance(self.selection, slice):
            selection = indices + self.selection.start
        else:
            selection = self.selection[indices]
        return _ColumnGroup(self.base, self.sources, selection)

    def compose_range(self, start: int, stop: int) -> "_ColumnGroup":
        """Group viewing rows ``[start, stop)`` of ``self`` — the morsel
        primitive.  Never copies: identity and slice selections stay
        slices, index-array selections are sliced (a numpy view)."""
        if self.selection is None:
            selection: np.ndarray | slice = slice(start, stop)
        elif isinstance(self.selection, slice):
            offset = self.selection.start
            selection = slice(offset + start, offset + stop)
        else:
            selection = self.selection[start:stop]
        return _ColumnGroup(self.base, self.sources, selection)


class Relation:
    """Columns keyed by ``(alias, column)``, all of equal length.

    The intermediate data structure flowing between operators.  Gather
    operations produce new relation *views*; the originals — and the
    base arrays — stay untouched.
    """

    def __init__(
        self,
        columns: dict[tuple[str, str], np.ndarray],
        num_rows: int,
        sources: dict[tuple[str, str], tuple[str, str]] | None = None,
        counters=None,
        parallel_gather=None,
    ) -> None:
        self._groups = (
            [_ColumnGroup(dict(columns), dict(sources or {}), None)]
            if columns
            else []
        )
        self.num_rows = num_rows
        self._counters = counters
        # Optional ``fn(base, selection) -> array | None`` installed by
        # a parallel executor: large index-array materializations are
        # gathered morsel-wise on the worker pool.  ``None`` from the
        # hook means "not worth parallelizing, gather inline".
        self._parallel_gather = parallel_gather
        self._materialized: dict[tuple[str, str], np.ndarray] = {}

    @classmethod
    def _from_groups(cls, groups: list[_ColumnGroup], num_rows: int,
                     counters, parallel_gather=None) -> "Relation":
        relation = cls({}, num_rows, counters=counters,
                       parallel_gather=parallel_gather)
        relation._groups = groups
        return relation

    @classmethod
    def empty(cls) -> "Relation":
        return cls({}, 0)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    def column_keys(self) -> list[tuple[str, str]]:
        return sorted(key for group in self._groups for key in group.base)

    def column(self, alias: str, name: str) -> np.ndarray:
        """The column's values at this view, materializing lazily.

        Identity views return the base array itself (zero copies);
        selected views gather once and cache the result, reporting the
        copy to the execution counters.
        """
        key = (alias, name)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached
        group = self._group_of(key)
        if group.selection is None or isinstance(group.selection, slice):
            # Identity and contiguous-range views are numpy views of the
            # base array: zero copies, nothing to count.
            values = group.base[key][group.selection or slice(None)]
        else:
            values = None
            if self._parallel_gather is not None:
                values = self._parallel_gather(group.base[key], group.selection)
            if values is None:
                values = group.base[key][group.selection]
            if self._counters is not None:
                self._counters.count_copy(len(values), values.nbytes)
        self._materialized[key] = values
        return values

    def column_head(self, alias: str, name: str, count: int) -> np.ndarray:
        """First ``count`` rows of a column without materializing it all.

        Used by sampling consumers (adaptive filter ordering); returns a
        cached full column when one already exists.
        """
        key = (alias, name)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached[:count]
        group = self._group_of(key)
        if group.selection is None:
            return group.base[key][:count]
        if isinstance(group.selection, slice):
            start = group.selection.start
            stop = min(group.selection.stop, start + count)
            return group.base[key][start:stop]
        return group.base[key][group.selection[:count]]

    def provider(self, alias: str, name: str) -> np.ndarray:
        """Column provider signature for the expression evaluator."""
        return self.column(alias, name)

    def base_source(
        self, alias: str, name: str
    ) -> tuple[str, str, np.ndarray | slice | None] | None:
        """Provenance of a column: ``(table, column, selection)``.

        ``selection is None`` means the view is the whole base column; a
        ``slice`` means one contiguous row range of it (a morsel view).
        Returns ``None`` for columns without table provenance.
        """
        key = (alias, name)
        group = self._group_of(key)
        source = group.sources.get(key)
        if source is None:
            return None
        return (source[0], source[1], group.selection)

    def _group_of(self, key: tuple[str, str]) -> _ColumnGroup:
        for group in self._groups:
            if key in group.base:
                return group
        raise ExecutionError(
            f"column {key[0]}.{key[1]} not present in relation "
            f"(have {self.column_keys()})"
        )

    # ------------------------------------------------------------------
    # Row-set composition (zero-copy)
    # ------------------------------------------------------------------

    def gather(self, indices: np.ndarray) -> "Relation":
        indices = np.asarray(indices, dtype=np.int64)
        groups = [group.compose(indices) for group in self._groups]
        return Relation._from_groups(
            groups, int(len(indices)), self._counters, self._parallel_gather
        )

    def mask(self, mask: np.ndarray) -> "Relation":
        return self.gather(np.flatnonzero(mask))

    def range_view(self, start: int, stop: int, counters=None) -> "Relation":
        """Zero-copy view of rows ``[start, stop)`` — one morsel.

        Identity and range selections stay contiguous slices (columns
        materialize as numpy views); index-array selections are sliced.
        ``counters`` lets a parallel worker account its copies into its
        own :class:`~repro.engine.metrics.ExecutionMetrics`, merged
        after the barrier.  Morsel views deliberately drop the
        parallel-gather hook: a worker must never re-enter the pool it
        runs on.
        """
        groups = [group.compose_range(start, stop) for group in self._groups]
        return Relation._from_groups(
            groups, stop - start, counters or self._counters
        )

    def merged_with(self, other: "Relation", self_idx: np.ndarray,
                    other_idx: np.ndarray) -> "Relation":
        """Join-style merge: view self through ``self_idx`` and other
        through ``other_idx``, concatenating the column sets."""
        mine = set(key for group in self._groups for key in group.base)
        for group in other._groups:
            for key in group.base:
                if key in mine:
                    raise ExecutionError(f"duplicate column {key} in join")
        self_idx = np.asarray(self_idx, dtype=np.int64)
        other_idx = np.asarray(other_idx, dtype=np.int64)
        groups = [group.compose(self_idx) for group in self._groups]
        groups.extend(group.compose(other_idx) for group in other._groups)
        return Relation._from_groups(
            groups, int(len(self_idx)), self._counters or other._counters,
            self._parallel_gather or other._parallel_gather,
        )

    # ------------------------------------------------------------------
    # Eager compatibility
    # ------------------------------------------------------------------

    def materialized(self) -> "Relation":
        """Fully materialized copy — the seed engine's behaviour.

        Every column is gathered now (and counted); the result is a
        single identity group.  The executor's eager-materialization
        baseline mode calls this after every row-set operation, which
        restores the O(columns x rows) per-filter cost the lazy path
        exists to avoid.
        """
        columns: dict[tuple[str, str], np.ndarray] = {}
        sources: dict[tuple[str, str], tuple[str, str]] = {}
        for group in self._groups:
            for key in group.base:
                columns[key] = self.column(*key)
                source = group.sources.get(key)
                if source is not None and group.selection is None:
                    sources[key] = source
        return Relation(columns, self.num_rows, sources=sources,
                        counters=self._counters)

    @property
    def columns(self) -> dict[tuple[str, str], np.ndarray]:
        """Materialize every column (final output, tests, debugging)."""
        return {key: self.column(*key) for key in self.column_keys()}

    def __repr__(self) -> str:
        return (
            f"Relation(rows={self.num_rows}, "
            f"columns={self.column_keys()})"
        )
