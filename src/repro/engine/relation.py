"""Runtime relation: a lazy, zero-copy batch of alias-qualified columns.

A :class:`Relation` is a *view*: base column arrays plus an int64
selection vector.  ``mask``/``gather``/``merged_with`` compose selection
indices — O(rows) int64 work regardless of column count — instead of
copying every column the way an eager engine would.  A column is
materialized (``base[selection]``) only when something actually reads
it: join-key encoding, predicate evaluation, aggregate input, or the
final output.  Materialized columns are cached per view, and the copy
cost is reported to :class:`~repro.engine.metrics.ExecutionMetrics`
(``rows_copied`` / ``bytes_gathered``) so benchmarks can prove that
filter applications no longer gather untouched columns.

Columns remember their *provenance* — the ``(table, column)`` they were
scanned from.  Because selections compose without rewriting base arrays,
provenance survives arbitrarily many filters and joins, which lets the
executor encode join keys through the table-resident dictionary indexes
(:meth:`repro.storage.database.Database.dictionary`) instead of
re-factorizing per query.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.succinct import Bitvector


# Minimum view width (candidate rows) for the packed bitmap selection
# representation.  Below this, an int64 position vector is at worst a
# few hundred KiB and the numpy fixed costs of packing/decoding words
# (packbits + unpackbits + flatnonzero vs one flatnonzero) outweigh the
# memory win — measured on the 20-query star hot path, packing every
# 18k-row scan selection costs ~4% end to end.  Above it, selection
# state starts competing for cache between operators and the 64x
# smaller words win.  Chosen representation never changes results:
# decoded positions are identical either way.
_BITMAP_MIN_ROWS = 1 << 16


class BitmapSelection:
    """A sorted row selection held as one packed bit per candidate row.

    The succinct replacement for int64 selection vectors on the
    row-filter paths (predicate scans, bitvector filter applications):
    64x smaller resident state per surviving row.  ``bitmap`` spans the
    rows of the view the selection was taken *from* (its width);
    ``offset`` rebases those rows into the base arrays when the
    originating view was a contiguous slice.  The int64 position vector
    is decoded lazily — ``positions()`` bulk-selects over the words at
    the first materialization boundary and caches the result, the same
    lifecycle as a gathered column.

    Refinements (``refine``/``subset``) stay in bitmap form: the new
    words are the old words AND the survivor scatter, so a stack of
    filters composes at one bit per base row instead of chaining int64
    takes.
    """

    __slots__ = ("bitmap", "offset", "_base_positions")

    def __init__(
        self,
        bitmap: Bitvector,
        offset: int = 0,
        positions: np.ndarray | None = None,
    ) -> None:
        self.bitmap = bitmap
        self.offset = int(offset)
        self._base_positions = positions  # base-domain, offset applied

    @property
    def num_rows(self) -> int:
        return self.bitmap.count()

    def positions(self) -> np.ndarray:
        """Base-domain row positions, ascending (decoded once, cached)."""
        if self._base_positions is None:
            local = self.bitmap.positions()
            if self.offset:
                local += self.offset
            self._base_positions = local
        return self._base_positions

    def head(self, count: int) -> np.ndarray:
        """First ``count`` base positions without a full decode —
        ``select1`` over the leading ranks (sampling consumers)."""
        if self._base_positions is not None:
            return self._base_positions[:count]
        count = min(count, self.bitmap.count())
        local = self.bitmap.select1(np.arange(count, dtype=np.int64))
        if self.offset:
            local += self.offset
        return local

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Arbitrary-order gather: leaves bitmap form (joins, top-k)."""
        return self.positions()[indices]

    def refine(self, mask: np.ndarray) -> "BitmapSelection":
        """Selection of this selection by a bool mask over its rows."""
        survivors = self.positions()[mask]
        local = survivors - self.offset if self.offset else survivors
        return BitmapSelection(
            Bitvector.from_positions(local, self.bitmap.num_bits),
            self.offset,
            positions=survivors,
        )

    def subset(self, indices: np.ndarray) -> "BitmapSelection":
        """Selection of this selection by sorted row indices."""
        survivors = self.positions()[indices]
        local = survivors - self.offset if self.offset else survivors
        return BitmapSelection(
            Bitvector.from_positions(local, self.bitmap.num_bits),
            self.offset,
            positions=survivors,
        )


class _ColumnGroup:
    """A set of equally-selected columns sharing one selection vector.

    ``base`` maps ``(alias, column)`` to a base array; ``selection`` is
    ``None`` (identity: the view is the base rows themselves), a
    contiguous ``slice`` (a morsel: the view is one row range of the
    base, materializable as a numpy view without copying), or an int64
    index array into the base arrays.  All groups of one relation
    describe the same number of rows.
    """

    __slots__ = ("base", "sources", "selection")

    def __init__(
        self,
        base: dict[tuple[str, str], np.ndarray],
        sources: dict[tuple[str, str], tuple[str, str]],
        selection: np.ndarray | slice | None,
    ) -> None:
        self.base = base
        self.sources = sources
        self.selection = selection

    def compose(self, indices: np.ndarray) -> "_ColumnGroup":
        """Group viewing ``self`` restricted to ``indices`` (no copies
        of data columns — only the int64 selection is gathered)."""
        if self.selection is None:
            selection = indices
        elif isinstance(self.selection, slice):
            selection = indices + self.selection.start
        elif isinstance(self.selection, BitmapSelection):
            selection = self.selection.take(indices)
        else:
            selection = self.selection[indices]
        return _ColumnGroup(self.base, self.sources, selection)

    def compose_range(self, start: int, stop: int) -> "_ColumnGroup":
        """Group viewing rows ``[start, stop)`` of ``self`` — the morsel
        primitive.  Never copies: identity and slice selections stay
        slices, index-array and bitmap selections are sliced position
        vectors (numpy views of the decoded cache)."""
        if self.selection is None:
            selection: np.ndarray | slice = slice(start, stop)
        elif isinstance(self.selection, slice):
            offset = self.selection.start
            selection = slice(offset + start, offset + stop)
        elif isinstance(self.selection, BitmapSelection):
            selection = self.selection.positions()[start:stop]
        else:
            selection = self.selection[start:stop]
        return _ColumnGroup(self.base, self.sources, selection)


class Relation:
    """Columns keyed by ``(alias, column)``, all of equal length.

    The intermediate data structure flowing between operators.  Gather
    operations produce new relation *views*; the originals — and the
    base arrays — stay untouched.
    """

    def __init__(
        self,
        columns: dict[tuple[str, str], np.ndarray],
        num_rows: int,
        sources: dict[tuple[str, str], tuple[str, str]] | None = None,
        counters=None,
        parallel_gather=None,
    ) -> None:
        self._groups = (
            [_ColumnGroup(dict(columns), dict(sources or {}), None)]
            if columns
            else []
        )
        self.num_rows = num_rows
        self._counters = counters
        # Optional ``fn(base, selection) -> array | None`` installed by
        # a parallel executor: large index-array materializations are
        # gathered morsel-wise on the worker pool.  ``None`` from the
        # hook means "not worth parallelizing, gather inline".
        self._parallel_gather = parallel_gather
        self._materialized: dict[tuple[str, str], np.ndarray] = {}

    @classmethod
    def _from_groups(cls, groups: list[_ColumnGroup], num_rows: int,
                     counters, parallel_gather=None) -> "Relation":
        relation = cls({}, num_rows, counters=counters,
                       parallel_gather=parallel_gather)
        relation._groups = groups
        return relation

    @classmethod
    def empty(cls) -> "Relation":
        return cls({}, 0)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    def column_keys(self) -> list[tuple[str, str]]:
        return sorted(key for group in self._groups for key in group.base)

    def column(self, alias: str, name: str) -> np.ndarray:
        """The column's values at this view, materializing lazily.

        Identity views return the base array itself (zero copies);
        selected views gather once and cache the result, reporting the
        copy to the execution counters.
        """
        key = (alias, name)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached
        group = self._group_of(key)
        if group.selection is None or isinstance(group.selection, slice):
            # Identity and contiguous-range views are numpy views of the
            # base array: zero copies, nothing to count.
            values = group.base[key][group.selection or slice(None)]
        else:
            selection = group.selection
            if isinstance(selection, BitmapSelection):
                # Materialization boundary: decode the bitmap to
                # positions (cached on the selection) and gather.
                selection = selection.positions()
            values = None
            if self._parallel_gather is not None:
                values = self._parallel_gather(group.base[key], selection)
            if values is None:
                values = group.base[key][selection]
            if self._counters is not None:
                self._counters.count_copy(len(values), values.nbytes)
        self._materialized[key] = values
        return values

    def column_head(self, alias: str, name: str, count: int) -> np.ndarray:
        """First ``count`` rows of a column without materializing it all.

        Used by sampling consumers (adaptive filter ordering); returns a
        cached full column when one already exists.
        """
        key = (alias, name)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached[:count]
        group = self._group_of(key)
        if group.selection is None:
            return group.base[key][:count]
        if isinstance(group.selection, slice):
            start = group.selection.start
            stop = min(group.selection.stop, start + count)
            return group.base[key][start:stop]
        if isinstance(group.selection, BitmapSelection):
            # select1 over the leading ranks: no full position decode
            # just to sample a prefix.
            return group.base[key][group.selection.head(count)]
        return group.base[key][group.selection[:count]]

    def provider(self, alias: str, name: str) -> np.ndarray:
        """Column provider signature for the expression evaluator."""
        return self.column(alias, name)

    def base_source(
        self, alias: str, name: str
    ) -> tuple[str, str, np.ndarray | slice | None] | None:
        """Provenance of a column: ``(table, column, selection)``.

        ``selection is None`` means the view is the whole base column; a
        ``slice`` means one contiguous row range of it (a morsel view).
        Returns ``None`` for columns without table provenance.
        """
        key = (alias, name)
        group = self._group_of(key)
        source = group.sources.get(key)
        if source is None:
            return None
        selection = group.selection
        if isinstance(selection, BitmapSelection):
            # Provenance consumers index base arrays with the returned
            # selection; hand them the decoded positions.
            selection = selection.positions()
        return (source[0], source[1], selection)

    def _group_of(self, key: tuple[str, str]) -> _ColumnGroup:
        for group in self._groups:
            if key in group.base:
                return group
        raise ExecutionError(
            f"column {key[0]}.{key[1]} not present in relation "
            f"(have {self.column_keys()})"
        )

    # ------------------------------------------------------------------
    # Row-set composition (zero-copy)
    # ------------------------------------------------------------------

    def gather(self, indices: np.ndarray) -> "Relation":
        indices = np.asarray(indices, dtype=np.int64)
        groups = [group.compose(indices) for group in self._groups]
        return Relation._from_groups(
            groups, int(len(indices)), self._counters, self._parallel_gather
        )

    def mask(self, mask: np.ndarray) -> "Relation":
        """Row filter by bool mask — the succinct path.

        Identity and slice views pack the mask into bitvector words
        directly (no ``flatnonzero``, no int64 vector); bitmap views
        refine word-wise; only index-array views fall back to position
        composition.  Positions decode lazily at the materialization
        boundary, so the resident selection state between operators is
        1 bit per candidate row instead of 64 per survivor.
        """
        mask = np.asarray(mask)
        counters = self._counters
        use_bitmap = self.num_rows >= _BITMAP_MIN_ROWS
        packed: Bitvector | None = None
        flat: np.ndarray | None = None
        groups = []
        for group in self._groups:
            current = group.selection
            if current is None or isinstance(current, slice):
                offset = 0 if current is None else current.start
                if use_bitmap:
                    if packed is None:
                        packed = Bitvector.from_mask(mask)
                        if counters is not None:
                            counters.count_selection(
                                packed.nbytes, packed.count() * 8
                            )
                    selection: object = BitmapSelection(packed, offset)
                else:
                    if flat is None:
                        flat = np.flatnonzero(mask)
                        if counters is not None:
                            counters.count_selection(flat.nbytes, flat.nbytes)
                    selection = flat + offset if offset else flat
            elif isinstance(current, BitmapSelection):
                selection = current.refine(mask)
                if counters is not None:
                    counters.count_selection(
                        selection.bitmap.nbytes, selection.num_rows * 8
                    )
            else:
                if flat is None:
                    flat = np.flatnonzero(mask)
                selection = current[flat]
                if counters is not None:
                    counters.count_selection(
                        selection.nbytes, selection.nbytes
                    )
            groups.append(_ColumnGroup(group.base, group.sources, selection))
        if packed is not None:
            num_rows = packed.count()
        elif flat is not None:
            num_rows = len(flat)
        else:
            num_rows = int(np.count_nonzero(mask))
        return Relation._from_groups(
            groups, int(num_rows), counters, self._parallel_gather
        )

    def select_sorted(self, positions: np.ndarray) -> "Relation":
        """Row filter by already-sorted view-local positions.

        The executor's morsel-parallel selection paths concatenate
        per-morsel ``flatnonzero`` offsets — sorted by construction —
        and previously composed them as int64 take-chains.  Here they
        become the same packed bitmap representation :meth:`mask`
        produces (the position cache is seeded, since the vector is
        already in hand), so parallel and serial executions hold
        identical selection state.
        """
        positions = np.asarray(positions, dtype=np.int64)
        counters = self._counters
        use_bitmap = self.num_rows >= _BITMAP_MIN_ROWS
        packed: Bitvector | None = None
        counted = False
        groups = []
        for group in self._groups:
            current = group.selection
            if current is None or isinstance(current, slice):
                if not use_bitmap:
                    if counters is not None and not counted:
                        counters.count_selection(
                            positions.nbytes, positions.nbytes
                        )
                        counted = True
                    if current is None:
                        selection: object = positions
                    else:
                        selection = positions + current.start
                    groups.append(
                        _ColumnGroup(group.base, group.sources, selection)
                    )
                    continue
                if packed is None:
                    packed = Bitvector.from_positions(
                        positions, self.num_rows
                    )
                    if counters is not None:
                        counters.count_selection(
                            packed.nbytes, positions.nbytes
                        )
                if current is None:
                    selection = BitmapSelection(
                        packed, 0, positions=positions
                    )
                else:
                    selection = BitmapSelection(packed, current.start)
            elif isinstance(current, BitmapSelection):
                selection = current.subset(positions)
                if counters is not None:
                    counters.count_selection(
                        selection.bitmap.nbytes, selection.num_rows * 8
                    )
            else:
                selection = current[positions]
                if counters is not None:
                    counters.count_selection(
                        selection.nbytes, selection.nbytes
                    )
            groups.append(_ColumnGroup(group.base, group.sources, selection))
        return Relation._from_groups(
            groups, int(len(positions)), counters, self._parallel_gather
        )

    def narrow(self, start: int, stop: int) -> "Relation":
        """Contiguous row band ``[start, stop)`` of this view.

        Like :meth:`range_view` but for operator results on the main
        execution path: counters and the parallel-gather hook are kept.
        Identity views become slice selections — zero-copy column
        materialization for zone-map band searches.
        """
        groups = [group.compose_range(start, stop) for group in self._groups]
        return Relation._from_groups(
            groups, stop - start, self._counters, self._parallel_gather
        )

    def settle_selections(self) -> None:
        """Decode bitmap selection position caches now (main thread).

        Called before morsel fan-out so concurrent ``range_view`` calls
        slice one shared positions array instead of racing the decode.
        """
        for group in self._groups:
            if isinstance(group.selection, BitmapSelection):
                group.selection.positions()

    def range_view(self, start: int, stop: int, counters=None) -> "Relation":
        """Zero-copy view of rows ``[start, stop)`` — one morsel.

        Identity and range selections stay contiguous slices (columns
        materialize as numpy views); index-array selections are sliced.
        ``counters`` lets a parallel worker account its copies into its
        own :class:`~repro.engine.metrics.ExecutionMetrics`, merged
        after the barrier.  Morsel views deliberately drop the
        parallel-gather hook: a worker must never re-enter the pool it
        runs on.
        """
        groups = [group.compose_range(start, stop) for group in self._groups]
        return Relation._from_groups(
            groups, stop - start, counters or self._counters
        )

    def merged_with(self, other: "Relation", self_idx: np.ndarray,
                    other_idx: np.ndarray) -> "Relation":
        """Join-style merge: view self through ``self_idx`` and other
        through ``other_idx``, concatenating the column sets."""
        mine = set(key for group in self._groups for key in group.base)
        for group in other._groups:
            for key in group.base:
                if key in mine:
                    raise ExecutionError(f"duplicate column {key} in join")
        self_idx = np.asarray(self_idx, dtype=np.int64)
        other_idx = np.asarray(other_idx, dtype=np.int64)
        groups = [group.compose(self_idx) for group in self._groups]
        groups.extend(group.compose(other_idx) for group in other._groups)
        return Relation._from_groups(
            groups, int(len(self_idx)), self._counters or other._counters,
            self._parallel_gather or other._parallel_gather,
        )

    # ------------------------------------------------------------------
    # Eager compatibility
    # ------------------------------------------------------------------

    def materialized(self) -> "Relation":
        """Fully materialized copy — the seed engine's behaviour.

        Every column is gathered now (and counted); the result is a
        single identity group.  The executor's eager-materialization
        baseline mode calls this after every row-set operation, which
        restores the O(columns x rows) per-filter cost the lazy path
        exists to avoid.
        """
        columns: dict[tuple[str, str], np.ndarray] = {}
        sources: dict[tuple[str, str], tuple[str, str]] = {}
        for group in self._groups:
            for key in group.base:
                columns[key] = self.column(*key)
                source = group.sources.get(key)
                if source is not None and group.selection is None:
                    sources[key] = source
        return Relation(columns, self.num_rows, sources=sources,
                        counters=self._counters)

    @property
    def columns(self) -> dict[tuple[str, str], np.ndarray]:
        """Materialize every column (final output, tests, debugging)."""
        return {key: self.column(*key) for key in self.column_keys()}

    def __repr__(self) -> str:
        return (
            f"Relation(rows={self.num_rows}, "
            f"columns={self.column_keys()})"
        )
