"""Shared morsel worker pool for intra-query parallelism.

One process-wide thread pool serves every executor: morsel tasks are
short, numpy-kernel-dominated, and never block on each other, so a
single shared pool (grown to the widest ``parallelism`` requested so
far) beats per-executor pools that would multiply idle threads.  Worker
threads release the GIL inside the numpy kernels that dominate morsel
work — fancy-index gathers, ``searchsorted``, ``argsort``, ufunc
comparisons, and (since the parallel-build PR) the ``np.unique``
factorization sorts and hash scatters of per-morsel bitvector filter
partials — which is where the parallel speedup comes from.  Probe-side
morsels and build-side partials are both just tasks here; the
single-build-then-shared contract is preserved by the executor's
deterministic merge barrier, not by the pool.

Deadlock discipline: a morsel task must never submit to the pool it
runs on.  The executor enforces this structurally — per-morsel relation
views carry no parallel-gather hook, and filter partials are built from
such views, so nothing a worker calls can re-enter the pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.engine.context import CancelToken
from repro.errors import QueryCancelled
from repro.storage.partition import DEFAULT_MORSEL_ROWS  # re-export  # noqa: F401
from repro.testing.faults import fault_point

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_width = 0


def shared_worker_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide morsel pool, at least ``workers`` wide.

    The pool only ever grows: asking for more workers than the current
    width replaces the pool (in-flight tasks on the old pool finish;
    new submissions land on the wider one).  Callers should re-fetch
    the pool per parallel region rather than holding one reference for
    the executor's lifetime.
    """
    global _pool, _pool_width
    workers = max(int(workers), 1)
    with _pool_lock:
        if _pool is None or _pool_width < workers:
            retired = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-morsel"
            )
            _pool_width = workers
            if retired is not None:
                retired.shutdown(wait=False)
        return _pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests / interpreter shutdown)."""
    global _pool, _pool_width
    with _pool_lock:
        retired = _pool
        _pool = None
        _pool_width = 0
    if retired is not None:
        retired.shutdown(wait=True)


def run_morsel_tasks(
    workers: int,
    tasks: Sequence[Callable[[], object]],
    cancel_token: CancelToken | None = None,
) -> list:
    """Run ``tasks`` on the shared pool; results in task order.

    This is a barrier: it returns only after every task finished.  The
    first exception (in task order) propagates after all futures are
    awaited, so no worker is left writing into shared output buffers.
    A pool retired by a concurrent grow can reject new submissions
    (tasks it already accepted still run and their futures stay
    valid), so each rejected submit is retried individually on a fresh
    pool — never the whole batch, which would execute accepted tasks
    twice.

    With a ``cancel_token``, the region cancels cooperatively: a task
    that raises trips the token, and every not-yet-started sibling
    short-circuits with :class:`~repro.errors.QueryCancelled` instead
    of running doomed work.  The barrier then prefers the *root cause*
    — the first non-cancellation error in task order (a task's own
    failure, or a :class:`~repro.errors.QueryTimeout` from a deadline
    checkpoint) — over the secondary cancellation signals, so callers
    always see why the region died, not that it was told to stop.
    """
    if len(tasks) == 1:
        return [tasks[0]()]
    fault_point("pool.submit")
    if cancel_token is not None:
        tasks = [_cancellable(task, cancel_token) for task in tasks]
    pool = shared_worker_pool(workers)
    futures = []
    for task in tasks:
        try:
            futures.append(pool.submit(task))
        except RuntimeError:
            pool = shared_worker_pool(workers)
            futures.append(pool.submit(task))
    results = []
    error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if error is None or (
                isinstance(error, QueryCancelled)
                and not isinstance(exc, QueryCancelled)
            ):
                error = exc
            results.append(None)
    if error is not None:
        raise error
    return results


def _cancellable(
    task: Callable[[], object], token: CancelToken
) -> Callable[[], object]:
    """Wrap ``task`` so the region short-circuits after a sibling dies."""

    def run() -> object:
        if token.cancelled:
            raise QueryCancelled(
                f"morsel task short-circuited: {token.reason}"
            )
        try:
            return task()
        except BaseException as exc:
            # First failure wins; idempotent for later ones.
            token.cancel(f"{type(exc).__name__}: {exc}")
            raise

    return run
