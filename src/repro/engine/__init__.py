"""Vectorized in-memory execution engine.

Executes physical plans over :class:`repro.storage.Database` tables.
Joins, predicate evaluation, and bitvector filtering are all vectorized
with numpy, so the engine is fast enough to run workload-scale
experiments while producing *exact* per-operator tuple counts — the
quantity all of the paper's results are built on.
"""

from repro.engine.context import (
    CancelToken,
    Deadline,
    ExecutionContext,
    ResourceBudget,
)
from repro.engine.metrics import NodeMetrics, ExecutionMetrics
from repro.engine.executor import Executor, ExecutionResult

__all__ = [
    "NodeMetrics",
    "ExecutionMetrics",
    "Executor",
    "ExecutionResult",
    "ExecutionContext",
    "Deadline",
    "ResourceBudget",
    "CancelToken",
]
