"""Bitvector filter implementations.

The paper's analysis assumes bitvector filters *without false positives*
(its Property 4 / Lemma 1 equality conditions); real engines use hash
bitmaps or Bloom filters that trade accuracy for space.  This package
provides both:

* :class:`ExactFilter` — set-exact semi-join semantics (zero false
  positives), the filter the theory reasons about;
* :class:`BloomFilter` — classic k-hash Bloom filter with configurable
  bits-per-key;
* :class:`BlockedBloomFilter` — cache-line-blocked variant (single
  memory region per key, as in Putze et al. / modern engines).

All filters share the :class:`BitvectorFilter` interface: build from a
list of key-column arrays, then test membership of probe-side key
columns, returning a boolean mask.  Filters never have false negatives.
"""

from repro.filters.base import BitvectorFilter
from repro.filters.exact import ExactFilter
from repro.filters.bloom import BloomFilter
from repro.filters.blocked import BlockedBloomFilter
from repro.filters.registry import create_filter, FILTER_KINDS
from repro.filters.cache import BitvectorFilterCache, filter_cache_key

__all__ = [
    "BitvectorFilter",
    "ExactFilter",
    "BloomFilter",
    "BlockedBloomFilter",
    "create_filter",
    "FILTER_KINDS",
    "BitvectorFilterCache",
    "filter_cache_key",
]
