"""Classic Bloom filter with vectorized insert and probe."""

from __future__ import annotations

import math

import numpy as np

from repro.filters.base import (
    BitvectorFilter,
    compute_key_bounds,
    merge_key_bounds,
    validate_key_columns,
)
from repro.util.hashing import hash_columns, hash_int64

_DEFAULT_BITS_PER_KEY = 10


def optimal_num_hashes(bits_per_key: float) -> int:
    """The k minimizing false positives for a given bits/key budget."""
    return max(1, round(bits_per_key * math.log(2.0)))


class BloomFilter(BitvectorFilter):
    """k-hash Bloom filter over key tuples.

    Uses Kirsch-Mitzenmacher double hashing: positions are
    ``h1 + i * h2 (mod m)``, which preserves the asymptotic false
    positive rate with only two base hashes per key.  The bit array is
    packed into ``uint64`` words (8x denser than a bool array) and the
    hash positions index the words directly — no intermediate
    ``astype(int64)`` copies on build or probe.
    """

    def __init__(self, num_bits: int, num_hashes: int, num_keys: int,
                 words: np.ndarray,
                 key_bounds: list[tuple | None] | None = None) -> None:
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._num_keys = num_keys
        self._words = words
        self._key_bounds = key_bounds

    supports_partitioned_build = True

    @classmethod
    def build_geometry(
        cls,
        num_keys: int,
        bits_per_key: float = _DEFAULT_BITS_PER_KEY,
        num_hashes: int | None = None,
        **options,
    ) -> dict:
        """Bit-array size and hash count for ``num_keys`` total keys.

        Shared by the serial build and every partition partial: identical
        geometry (plus the deterministic hash seeds) is what makes the
        OR-merge of partial word arrays bit-identical to a serial build.
        """
        num_bits = max(64, int(math.ceil(bits_per_key * max(1, num_keys))))
        if num_hashes is None:
            num_hashes = optimal_num_hashes(bits_per_key)
        return {"num_bits": num_bits, "num_hashes": num_hashes}

    @classmethod
    def _scatter_words(
        cls, key_columns: list[np.ndarray], num_keys: int,
        num_bits: int, num_hashes: int,
    ) -> np.ndarray:
        # Build-side scatter stays on a bool array (vectorized boolean
        # assignment; np.bitwise_or.at is an unbuffered ufunc, ~5x
        # slower), then packs once into uint64 words for the 8x denser
        # resident form the probe path reads.
        num_words = (num_bits + 63) // 64
        bits = np.zeros(num_bits, dtype=bool)
        if num_keys:
            h1, h2 = _base_hashes(key_columns)
            for i in range(num_hashes):
                positions = (h1 + np.uint64(i) * h2) % np.uint64(num_bits)
                bits[positions] = True
        packed = np.packbits(bits, bitorder="little")
        padded = np.zeros(num_words * 8, dtype=np.uint8)
        padded[: len(packed)] = packed
        return padded.view(np.uint64)

    @classmethod
    def build(
        cls,
        key_columns: list[np.ndarray],
        bits_per_key: float = _DEFAULT_BITS_PER_KEY,
        num_hashes: int | None = None,
        **options,
    ) -> "BloomFilter":
        num_keys = validate_key_columns(key_columns)
        geometry = cls.build_geometry(
            num_keys, bits_per_key=bits_per_key, num_hashes=num_hashes
        )
        words = cls._scatter_words(key_columns, num_keys, **geometry)
        # Key bounds cost one min/max pass at build time and let zone
        # maps skip whole probe morsels that cannot contain any key.
        return cls(geometry["num_bits"], geometry["num_hashes"], num_keys,
                   words, key_bounds=compute_key_bounds(key_columns))

    @classmethod
    def build_partial(
        cls, key_columns: list[np.ndarray], geometry: dict, **options
    ) -> "BloomFilter":
        """Partial over one partition, scattered into the *shared*
        geometry (never this partition's own key count)."""
        num_keys = validate_key_columns(key_columns)
        words = cls._scatter_words(key_columns, num_keys, **geometry)
        return cls(geometry["num_bits"], geometry["num_hashes"], num_keys,
                   words, key_bounds=compute_key_bounds(key_columns))

    @classmethod
    def merge(
        cls, partials: list["BloomFilter"], num_keys: int, **options
    ) -> "BloomFilter":
        """OR-merge partial word arrays built with identical geometry.

        A key's bit positions depend only on its value and the geometry,
        so the union of per-partition scatters is bit-identical to one
        serial scatter over all keys.
        """
        if not partials:
            raise ValueError("merge requires at least one partial")
        first = partials[0]
        words = first._words.copy()
        for partial in partials[1:]:
            if (partial._num_bits, partial._num_hashes) != (
                first._num_bits, first._num_hashes
            ):
                raise ValueError("partials disagree on filter geometry")
            words |= partial._words
        return cls(
            first._num_bits, first._num_hashes, int(num_keys), words,
            key_bounds=merge_key_bounds([p._key_bounds for p in partials]),
        )

    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        num_rows = validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(num_rows, dtype=bool)
        h1, h2 = _base_hashes(key_columns)
        result = np.ones(num_rows, dtype=bool)
        for i in range(self._num_hashes):
            positions = (h1 + np.uint64(i) * h2) % np.uint64(self._num_bits)
            selected = self._words[positions >> np.uint64(6)]
            result &= (selected >> (positions & np.uint64(63))) & np.uint64(1) != 0
        return result

    @property
    def size_bits(self) -> int:
        return self._num_bits

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def key_bounds(self) -> list[tuple | None] | None:
        return self._key_bounds

    def fill_fraction(self) -> float:
        """Fraction of bits set; drives the realized FP rate."""
        if self._num_bits == 0:
            return 0.0
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return set_bits / self._num_bits

    def false_positive_rate(self) -> float:
        """Realized FP estimate: ``fill_fraction ** k``."""
        return self.fill_fraction() ** self._num_hashes

    def __repr__(self) -> str:
        return (
            f"BloomFilter(keys={self._num_keys}, bits={self._num_bits}, "
            f"k={self._num_hashes})"
        )


def _base_hashes(key_columns: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Two independent 64-bit hash streams for double hashing."""
    h1 = hash_columns(key_columns)
    with np.errstate(over="ignore"):
        h2 = hash_int64(h1.view(np.int64)) | np.uint64(1)  # odd => coprime stride
    return h1, h2
