"""Exact bitvector filter: true semi-join semantics, no false positives.

This is the filter the paper's theory assumes ("if the bitvector filters
have no false positives", Property 4 and Lemmas 1/3).  It stores the raw
build-side key columns and answers membership by *joint factorization*
of build and probe values (see :mod:`repro.util.keycodes`), which makes
it collision-free for any data type.
"""

from __future__ import annotations

import numpy as np

from repro.filters.base import BitvectorFilter, validate_key_columns
from repro.util.keycodes import joint_codes


class ExactFilter(BitvectorFilter):
    """Collision-free membership filter (a hash table of key tuples)."""

    def __init__(self, key_columns: list[np.ndarray]) -> None:
        self._key_columns = [np.asarray(c) for c in key_columns]
        self._num_keys = validate_key_columns(self._key_columns)

    @classmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "ExactFilter":
        return cls(key_columns)

    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(len(key_columns[0]), dtype=bool)
        build_codes, probe_codes = joint_codes(self._key_columns, key_columns)
        return np.isin(probe_codes, build_codes)

    @property
    def size_bits(self) -> int:
        # Approximate: a dense hash set of 64-bit entries.
        return self._num_keys * 64

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def may_have_false_positives(self) -> bool:
        return False

    def false_positive_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"ExactFilter(keys={self._num_keys})"
