"""Exact bitvector filter: true semi-join semantics, no false positives.

This is the filter the paper's theory assumes ("if the bitvector filters
have no false positives", Property 4 and Lemmas 1/3).  It is *indexed*:
construction factorizes each build-side key column once into a sorted
dictionary (:class:`repro.util.keycodes.ColumnDictionary`) and stores
the sorted set of combined key codes.  A probe then encodes its values
through the dictionaries and answers membership with one vectorized
lookup — no re-factorization of the build keys at probe time, which is
what makes repeated filter applications cheap enough for the paper's
cost model to hold.

Float key columns take the legacy joint-factorization path instead:
``np.unique`` treats NaN as equal to NaN while ordered dictionary
lookups cannot, and the engine's join fallback factorizes jointly — the
filter must agree with it on NaN keys.  Decision-support join keys are
integers and strings, so this costs nothing in practice.
"""

from __future__ import annotations

import numpy as np

from repro.filters.base import BitvectorFilter, validate_key_columns
from repro.util.keycodes import (
    ColumnDictionary,
    combine_codes,
    dense_table_worthwhile,
    joint_codes,
)

# Largest combined key domain for which a dense bool membership table
# is kept alongside the sorted code set (1 MiB at bool width).
_MEMBER_TABLE_CAP = 1 << 20


class ExactFilter(BitvectorFilter):
    """Collision-free membership filter (a sorted code-set over key tuples)."""

    def __init__(self, key_columns: list[np.ndarray]) -> None:
        key_columns = [np.asarray(c) for c in key_columns]
        self._num_keys = validate_key_columns(key_columns)
        self._key_columns: list[np.ndarray] | None = None
        self._dictionaries: list[ColumnDictionary] | None = None
        self._code_set: np.ndarray | None = None
        self._member_table: np.ndarray | None = None

        if any(column.dtype.kind in "fc" for column in key_columns):
            # Float keys: stay on joint factorization for NaN parity
            # with the engine's fallback join path (see module doc).
            self._key_columns = key_columns
            return
        dictionaries = [ColumnDictionary.build(c) for c in key_columns]
        radices = [d.num_values for d in dictionaries]
        combined = combine_codes([d.codes for d in dictionaries], radices)
        if combined is None:
            # Mixed-radix overflow (astronomically wide keys): keep the
            # raw columns and fall back to joint factorization probes.
            self._key_columns = key_columns
            return
        self._dictionaries = dictionaries
        self._code_set = np.unique(combined)
        domain = 1
        for radix in radices:
            domain *= max(radix, 1)
        if domain > 0 and dense_table_worthwhile(
            domain, len(self._code_set), _MEMBER_TABLE_CAP
        ):
            # Dense membership bitmap over the combined key domain:
            # repeated probes become one O(1)-per-element gather.
            self._member_table = np.zeros(domain, dtype=bool)
            self._member_table[self._code_set] = True
        # The raw build columns are not retained in indexed mode: the
        # dictionaries' (values, codes) pair reconstructs them exactly
        # (values[codes]) and is never larger — codes are int64 while
        # string columns are object arrays.

    @classmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "ExactFilter":
        return cls(key_columns)

    def _build_columns(self) -> list[np.ndarray]:
        """The original build key columns, whichever mode we are in."""
        if self._key_columns is not None:
            return self._key_columns
        assert self._dictionaries is not None
        return [d.values[d.codes] for d in self._dictionaries]

    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(len(key_columns[0]), dtype=bool)
        if self._code_set is None:
            build_codes, probe_codes = joint_codes(
                self._build_columns(), key_columns
            )
            return np.isin(probe_codes, build_codes)
        return self.contains_codes(self.encode(key_columns))

    def contains_legacy(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Seed-engine probe: joint factorization on every call.

        Re-runs ``np.unique`` over build+probe values per probe — the
        O((n+m) log(n+m)) behaviour the indexed path replaces.  Kept as
        the measured baseline for ``benchmarks/test_exec_hot_path.py``
        (the executor's ``eager_materialization`` mode probes through
        it).
        """
        validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(len(key_columns[0]), dtype=bool)
        build_codes, probe_codes = joint_codes(
            self._build_columns(), key_columns
        )
        return np.isin(probe_codes, build_codes)

    def encode(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Combined build-domain codes for probe tuples (-1 = no match).

        Indexed path only (callers must hold a filter with a code set,
        which is every filter over non-float keys below ~2^62 combined
        domain size).
        """
        assert self._dictionaries is not None
        coded = [
            dictionary.encode(np.asarray(column))
            for dictionary, column in zip(self._dictionaries, key_columns)
        ]
        radices = [d.num_values for d in self._dictionaries]
        combined = combine_codes(coded, radices)
        assert combined is not None  # radices fit at construction time
        return combined

    def contains_codes(self, combined: np.ndarray) -> np.ndarray:
        """Membership of precomputed combined codes (see :meth:`encode`).

        ``np.isin`` selects a table- or sort-based strategy; both beat a
        per-element binary search at probe sizes.  Codes of ``-1``
        (tuples absent from some key domain) never appear in the code
        set, so they fall out as non-members naturally.
        """
        assert self._code_set is not None
        if len(self._code_set) == 0:
            return np.zeros(len(combined), dtype=bool)
        if self._member_table is not None:
            valid = combined >= 0
            return self._member_table[np.where(valid, combined, 0)] & valid
        return np.isin(combined, self._code_set)

    @property
    def size_bits(self) -> int:
        # The probe index proper: the sorted code set, <= one 64-bit
        # entry per build key.  Auxiliary structures (per-column sorted
        # domains + codes, and the optional <=1 MiB membership bitmap)
        # are excluded, matching the seed's accounting.
        return self._num_keys * 64

    @property
    def num_keys(self) -> int:
        return self._num_keys

    def key_bounds(self) -> list[tuple | None] | None:
        """Bounds straight off the sorted per-column dictionaries.

        Free in indexed mode — ``values`` is sorted, so the bounds are
        its first and last entries.  The legacy float path keeps no
        dictionaries and reports ``None`` (NaN keys forbid interval
        reasoning anyway; see the base-class contract).
        """
        if self._dictionaries is None:
            return None
        bounds: list[tuple | None] = []
        for dictionary in self._dictionaries:
            if dictionary.num_values == 0:
                bounds.append(None)
            else:
                bounds.append(
                    (dictionary.values[0], dictionary.values[-1])
                )
        return bounds

    @property
    def may_have_false_positives(self) -> bool:
        return False

    def false_positive_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"ExactFilter(keys={self._num_keys})"
