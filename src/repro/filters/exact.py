"""Exact bitvector filter: true semi-join semantics, no false positives.

This is the filter the paper's theory assumes ("if the bitvector filters
have no false positives", Property 4 and Lemmas 1/3).  It is *indexed*:
construction factorizes each build-side key column once into a sorted
dictionary (:class:`repro.util.keycodes.ColumnDictionary`) and stores
the sorted set of combined key codes.  A probe then encodes its values
through the dictionaries and answers membership with one vectorized
lookup — no re-factorization of the build keys at probe time, which is
what makes repeated filter applications cheap enough for the paper's
cost model to hold.

Float key columns take the legacy joint-factorization path instead:
``np.unique`` treats NaN as equal to NaN while ordered dictionary
lookups cannot, and the engine's join fallback factorizes jointly — the
filter must agree with it on NaN keys.  Decision-support join keys are
integers and strings, so this costs nothing in practice.
"""

from __future__ import annotations

import numpy as np

from repro.filters.base import BitvectorFilter, validate_key_columns
from repro.succinct import Bitvector
from repro.util.keycodes import (
    ColumnDictionary,
    combine_codes,
    joint_codes,
)

# Largest combined key domain for which a packed membership bitvector
# is kept alongside the sorted code set (1 MiB at 1 bit per slot — the
# same memory that used to buy a 2^20-slot bool table now spans 2^23).
_MEMBER_TABLE_CAP = 1 << 23


def _packed_table_worthwhile(domain: int, count: int) -> bool:
    """Cost model for the packed membership bitvector.

    The bool-table predecessor used ``dense_table_worthwhile`` (4x
    sparsity, 8 bits/slot).  At 1 bit/slot the same bytes-per-member
    break-even sits at 32x sparsity; the floor rises with it so small
    domains always qualify.
    """
    return 0 < domain <= max(32 * count, 8192) and domain <= _MEMBER_TABLE_CAP


# Domains small enough that a decoded bool view of the member bitvector
# is trivially cache-resident (<= 128 KiB).  Below this, one bool gather
# beats the word-probe's shift/mask op chain, so probes go through a
# lazily decoded view; above it the packed word probe wins on cache
# residency (the crossover is measured in BENCH_succinct_filters.json).
_PROBE_VIEW_CAP = 1 << 17


class ExactFilter(BitvectorFilter):
    """Collision-free membership filter (a sorted code-set over key tuples)."""

    supports_partitioned_build = True

    def __init__(self, key_columns: list[np.ndarray]) -> None:
        key_columns = [np.asarray(c) for c in key_columns]
        self._num_keys = validate_key_columns(key_columns)
        self._key_columns: list[np.ndarray] | None = None
        self._dictionaries: list[ColumnDictionary] | None = None
        self._code_set: np.ndarray | None = None
        self._member_table: Bitvector | None = None
        self._probe_view: np.ndarray | None = None
        self._mode = "indexed"

        if any(column.dtype.kind in "fc" for column in key_columns):
            # Float keys: stay on joint factorization for NaN parity
            # with the engine's fallback join path (see module doc).
            self._key_columns = key_columns
            self._mode = "float-fallback"
            return
        dictionaries = [ColumnDictionary.build(c) for c in key_columns]
        radices = [d.num_values for d in dictionaries]
        combined = combine_codes([d.codes for d in dictionaries], radices)
        if combined is None:
            # Mixed-radix overflow (astronomically wide keys): keep the
            # raw columns and fall back to joint factorization probes.
            self._key_columns = key_columns
            self._mode = "overflow-fallback"
            return
        self._dictionaries = dictionaries
        self._code_set = np.unique(combined)
        domain = 1
        for radix in radices:
            domain *= max(radix, 1)
        if _packed_table_worthwhile(domain, len(self._code_set)):
            # Packed membership bitvector over the combined key domain:
            # repeated probes become one word gather + shift per element
            # at 1 bit per domain slot (8x smaller than the bool table
            # this replaces).
            self._member_table = Bitvector.from_positions(
                self._code_set, domain
            )
        # The raw build columns are not retained in indexed mode: the
        # dictionaries' (values, codes) pair reconstructs them exactly
        # (values[codes]) and is never larger — codes are int64 while
        # string columns are object arrays.

    @classmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "ExactFilter":
        return cls(key_columns)

    # ------------------------------------------------------------------
    # Partitioned build (see BitvectorFilter's partitioned-build docs)
    # ------------------------------------------------------------------

    @classmethod
    def build_partial(
        cls, key_columns: list[np.ndarray], geometry: dict, **options
    ) -> "ExactFilter":
        """One partition's partial is just an exact filter over its rows:
        the expensive ``np.unique`` sorts run on the partition slice,
        which is exactly the work the parallel build fans out."""
        return cls(key_columns)

    @classmethod
    def merge(
        cls, partials: list["ExactFilter"], num_keys: int, **options
    ) -> "ExactFilter":
        """Merge per-partition sorted-unique key sets into one filter.

        The point of partitioning the build is that the expensive
        factorization sorts ran per-partition *in parallel*; the merge
        therefore never re-sorts rows.  Per key column, the partials'
        sorted dictionary domains fold into one sorted union with a
        stable sort over already-sorted runs (radix sort for integers,
        run-detecting timsort for strings) that simultaneously yields
        each partial's old-code → merged-code translation; the
        partials' code sets are then translated into the merged domain
        and unioned.  Single-column keys skip even that: every
        dictionary value occurs in some key, so the merged code set is
        ``arange(num_values)`` — exactly what the serial build's
        ``np.unique`` over per-row codes collapses to, for free.

        The result is indistinguishable from a serial build over the
        concatenated partitions: identical sorted domains, code set,
        membership table, ``key_bounds``, and — via the ``num_keys``
        override, so deduplication cannot hide the true inserted-row
        count — ``size_bits``.  Partials in a fallback mode (float keys
        for NaN parity, mixed-radix overflow) concatenate their raw key
        columns, which in partition order *are* the serial build's
        input, and rebuild.
        """
        if not partials:
            raise ValueError("merge requires at least one partial")
        if any(partial._code_set is None for partial in partials):
            return cls._merge_rebuild(partials, num_keys)
        num_columns = len(partials[0]._dictionaries)
        merged_domains: list[np.ndarray] = []
        translations: list[list[np.ndarray]] = []
        for index in range(num_columns):
            merged_values, partial_codes = _merge_sorted_domains(
                [p._dictionaries[index].values for p in partials]
            )
            merged_domains.append(merged_values)
            translations.append(partial_codes)
        radices = [len(domain) for domain in merged_domains]
        domain = 1
        for radix in radices:
            domain *= max(radix, 1)
        member_table: Bitvector | None = None
        if num_columns == 1:
            # Every dictionary value occurs in some key, so the merged
            # set is the full domain — and its membership bitvector is
            # all-ones words, no scatter at all.
            code_set = np.arange(radices[0], dtype=np.int64)
            if _packed_table_worthwhile(domain, len(code_set)):
                member_table = Bitvector.ones(domain)
        else:
            upper_count = sum(len(p._code_set) for p in partials)
            scatter = _packed_table_worthwhile(domain, upper_count)
            member_words: Bitvector | None = (
                Bitvector.zeros(domain) if scatter else None
            )
            translated: list[np.ndarray] = []
            for i, partial in enumerate(partials):
                decoded = partial._decode_code_set()
                combined = combine_codes(
                    [
                        translations[index][i][decoded[index]]
                        for index in range(num_columns)
                    ],
                    radices,
                )
                if combined is None:
                    # The union's radix product overflows even though
                    # each partial's fit: rebuild — the serial
                    # constructor reaches the same fallback mode.
                    return cls._merge_rebuild(partials, num_keys)
                if member_words is not None:
                    # Per-partition packed bitmap, OR-merged word by
                    # word like Bloom partials — no sorted union pass.
                    member_words.ior_words(
                        Bitvector.from_positions(combined, domain)
                    )
                else:
                    translated.append(combined)
            if member_words is not None:
                # The sorted unique union falls out of the bitmap for
                # free: select over the merged words.
                code_set = member_words.positions()
                if _packed_table_worthwhile(domain, len(code_set)):
                    member_table = member_words
            else:
                code_set = np.unique(np.concatenate(translated))
        merged = cls.__new__(cls)
        merged._num_keys = int(num_keys)
        merged._key_columns = None
        merged._mode = "indexed"
        # Dictionary codes decode the code set: values[codes] per column
        # yields the distinct key tuples — the faithful build-column
        # set the legacy probe path reconstructs (it only needs the key
        # *set*), never larger than one entry per distinct tuple.
        merged._dictionaries = [
            ColumnDictionary(domain, codes)
            for domain, codes in zip(
                merged_domains, _decode_codes(code_set, radices)
            )
        ]
        merged._code_set = code_set
        merged._member_table = member_table
        merged._probe_view = None
        return merged

    @classmethod
    def _merge_rebuild(
        cls, partials: list["ExactFilter"], num_keys: int
    ) -> "ExactFilter":
        """Fallback merge: concatenate raw build columns and rebuild.

        Partition order equals row order, so the concatenation is the
        serial build's input byte for byte — correctness over speed for
        the rare fallback modes.
        """
        parts = [partial._build_columns() for partial in partials]
        merged = cls(
            [
                np.concatenate([part[index] for part in parts])
                for index in range(len(parts[0]))
            ]
        )
        merged._num_keys = int(num_keys)
        return merged

    def _decode_code_set(self) -> list[np.ndarray]:
        """The code set split into per-column dictionary codes
        (mixed-radix decode, last column fastest-varying).  Indexed
        mode only."""
        assert self._code_set is not None and self._dictionaries is not None
        return _decode_codes(
            self._code_set, [d.num_values for d in self._dictionaries]
        )

    def _build_columns(self) -> list[np.ndarray]:
        """The original build key columns, whichever mode we are in."""
        if self._key_columns is not None:
            return self._key_columns
        assert self._dictionaries is not None
        return [d.values[d.codes] for d in self._dictionaries]

    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(len(key_columns[0]), dtype=bool)
        if self._code_set is None:
            build_codes, probe_codes = joint_codes(
                self._build_columns(), key_columns
            )
            return np.isin(probe_codes, build_codes)
        return self.contains_codes(self.encode(key_columns))

    def contains_legacy(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Seed-engine probe: joint factorization on every call.

        Re-runs ``np.unique`` over build+probe values per probe — the
        O((n+m) log(n+m)) behaviour the indexed path replaces.  Kept as
        the measured baseline for ``benchmarks/test_exec_hot_path.py``
        (the executor's ``eager_materialization`` mode probes through
        it).
        """
        validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(len(key_columns[0]), dtype=bool)
        build_codes, probe_codes = joint_codes(
            self._build_columns(), key_columns
        )
        return np.isin(probe_codes, build_codes)

    def encode(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Combined build-domain codes for probe tuples (-1 = no match).

        Indexed path only (callers must hold a filter with a code set,
        which is every filter over non-float keys below ~2^62 combined
        domain size).
        """
        assert self._dictionaries is not None
        coded = [
            dictionary.encode(np.asarray(column))
            for dictionary, column in zip(self._dictionaries, key_columns)
        ]
        radices = [d.num_values for d in self._dictionaries]
        combined = combine_codes(coded, radices)
        assert combined is not None  # radices fit at construction time
        return combined

    def contains_codes(self, combined: np.ndarray) -> np.ndarray:
        """Membership of precomputed combined codes (see :meth:`encode`).

        ``np.isin`` selects a table- or sort-based strategy; both beat a
        per-element binary search at probe sizes.  Codes of ``-1``
        (tuples absent from some key domain) never appear in the code
        set, so they fall out as non-members naturally.
        """
        assert self._code_set is not None
        if len(self._code_set) == 0:
            return np.zeros(len(combined), dtype=bool)
        if self._member_table is not None:
            valid = combined >= 0
            positions = np.where(valid, combined, 0)
            if self._member_table.num_bits <= _PROBE_VIEW_CAP:
                view = self._probe_view
                if view is None:
                    view = self._probe_view = self._member_table.to_mask()
                return view[positions] & valid
            return self._member_table.get(positions) & valid
        return np.isin(combined, self._code_set)

    @property
    def size_bits(self) -> int:
        # The probe index proper: the sorted code set, <= one 64-bit
        # entry per build key.  Auxiliary structures (per-column sorted
        # domains + codes, and the optional <=1 MiB membership bitmap)
        # are excluded, matching the seed's accounting.
        return self._num_keys * 64

    @property
    def num_keys(self) -> int:
        return self._num_keys

    @property
    def resident_bytes(self) -> int:
        """Actual resident footprint, whatever mode the filter is in.

        Indexed mode counts the sorted code set, the per-column
        dictionaries, and the packed membership bitvector (words plus
        any lazily built rank directory).  The fallback modes count the
        retained raw key columns — previously these reported nothing,
        so a cache full of float-keyed filters looked free.
        """
        total = 0
        if self._code_set is not None:
            total += self._code_set.nbytes
        if self._dictionaries is not None:
            for dictionary in self._dictionaries:
                total += dictionary.values.nbytes + dictionary.codes.nbytes
        if self._member_table is not None:
            total += self._member_table.resident_bytes
        if self._probe_view is not None:
            total += self._probe_view.nbytes
        if self._key_columns is not None:
            for column in self._key_columns:
                total += column.nbytes
        return total

    def describe(self) -> dict:
        """Geometry of the resident representation (all modes)."""
        info: dict = {
            "mode": self._mode,
            "num_keys": self._num_keys,
            "resident_bytes": self.resident_bytes,
        }
        if self._code_set is not None:
            info["code_set"] = len(self._code_set)
            if self._member_table is not None:
                info["member_table_bits"] = self._member_table.num_bits
                info["member_table_bytes"] = self._member_table.resident_bytes
                if self._probe_view is not None:
                    info["probe_view_bytes"] = self._probe_view.nbytes
        if self._key_columns is not None:
            info["raw_columns"] = len(self._key_columns)
        return info

    def key_bounds(self) -> list[tuple | None] | None:
        """Bounds straight off the sorted per-column dictionaries.

        Free in indexed mode — ``values`` is sorted, so the bounds are
        its first and last entries.  The legacy float path keeps no
        dictionaries and reports ``None`` (NaN keys forbid interval
        reasoning anyway; see the base-class contract).
        """
        if self._dictionaries is None:
            return None
        bounds: list[tuple | None] = []
        for dictionary in self._dictionaries:
            if dictionary.num_values == 0:
                bounds.append(None)
            else:
                bounds.append(
                    (dictionary.values[0], dictionary.values[-1])
                )
        return bounds

    @property
    def may_have_false_positives(self) -> bool:
        return False

    def false_positive_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"ExactFilter(keys={self._num_keys})"


def _decode_codes(codes: np.ndarray, radices: list[int]) -> list[np.ndarray]:
    """Mixed-radix decode of combined codes into per-column codes
    (inverse of :func:`repro.util.keycodes.combine_codes` for
    non-negative codes; last column fastest-varying)."""
    columns: list[np.ndarray] = [None] * len(radices)  # type: ignore[list-item]
    for index in range(len(radices) - 1, -1, -1):
        radix = max(int(radices[index]), 1)
        columns[index] = codes % radix
        codes = codes // radix
    return columns


def _merge_sorted_domains(
    parts: list[np.ndarray],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sorted union of sorted distinct-value arrays, plus translations.

    Returns ``(merged_values, codes_per_part)`` where
    ``codes_per_part[i][j]`` is the merged-domain code of ``parts[i][j]``
    — i.e. ``merged_values[codes_per_part[i]] == parts[i]``.  One stable
    argsort over the concatenation (already p sorted runs: radix sort
    for integers is O(n), timsort detects the runs for strings) plus
    O(n) group labelling; no per-element binary searches.
    """
    lengths = [len(part) for part in parts]
    concat = np.concatenate(parts) if parts else np.array([], dtype=np.int64)
    if len(concat) == 0:
        empty = np.array([], dtype=np.int64)
        return concat, [empty[:0].copy() for _ in parts]
    order = np.argsort(concat, kind="stable")
    ranked = concat[order]
    is_new = np.empty(len(ranked), dtype=bool)
    is_new[0] = True
    is_new[1:] = ranked[1:] != ranked[:-1]
    merged_values = ranked[is_new]
    codes = np.empty(len(concat), dtype=np.int64)
    codes[order] = np.cumsum(is_new) - 1
    split_points = np.cumsum(lengths)[:-1]
    return merged_values, [
        part.astype(np.int64, copy=False) for part in np.split(codes, split_points)
    ]
