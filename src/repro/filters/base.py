"""Abstract interface shared by all bitvector filter implementations."""

from __future__ import annotations

import abc

import numpy as np


class BitvectorFilter(abc.ABC):
    """A probabilistic (or exact) set membership filter over key tuples.

    Contract:

    * built once from the build side's key columns,
    * ``contains`` never returns ``False`` for a key that was inserted
      (no false negatives),
    * implementations may return ``True`` for keys that were *not*
      inserted (false positives), except :class:`ExactFilter`.
    """

    @classmethod
    @abc.abstractmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "BitvectorFilter":
        """Construct a filter containing every key tuple in the columns.

        ``key_columns`` is a non-empty list of equal-length arrays; row
        ``i`` across the arrays forms one key tuple.
        """

    @abc.abstractmethod
    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Boolean mask: which probe rows may match an inserted key."""

    @property
    @abc.abstractmethod
    def size_bits(self) -> int:
        """Memory footprint of the filter payload in bits."""

    @property
    @abc.abstractmethod
    def num_keys(self) -> int:
        """Number of key tuples inserted at build time."""

    @property
    def may_have_false_positives(self) -> bool:
        """Whether this implementation can report spurious matches."""
        return True

    def false_positive_rate(self) -> float:
        """Estimated probability a non-member passes the filter."""
        return 0.0

    def key_bounds(self) -> list[tuple | None] | None:
        """Per-key-column ``(min, max)`` of the inserted keys, or None.

        The zone-map pruning contract (see
        :mod:`repro.storage.zonemaps`): a probe morsel whose value
        range is disjoint from a column's bounds holds no tuple that
        was inserted, so the whole probe can be skipped — sound even
        for approximate filters, because bounds describe the *inserted*
        keys exactly.  A column entry is ``None`` when bounds are
        unavailable; float key columns containing NaN report ``None``
        (the engine's join fallback matches NaN to NaN, so interval
        reasoning would be unsound there).  Implementations without any
        bounds return ``None`` outright.
        """
        return None


def compute_key_bounds(key_columns: list[np.ndarray]) -> list[tuple | None]:
    """Per-column ``(min, max)`` of build keys, honoring the
    :meth:`BitvectorFilter.key_bounds` contract (NaN => ``None``)."""
    bounds: list[tuple | None] = []
    for column in key_columns:
        column = np.asarray(column)
        if len(column) == 0:
            bounds.append(None)
            continue
        kind = column.dtype.kind
        if kind == "f":
            if np.isnan(column).any():
                bounds.append(None)
            else:
                bounds.append((float(column.min()), float(column.max())))
        elif kind in "iub":
            bounds.append((int(column.min()), int(column.max())))
        elif kind in "OUS":
            try:
                bounds.append((column.min(), column.max()))
            except TypeError:  # mixed-type object column: no total order
                bounds.append(None)
        else:
            bounds.append(None)
    return bounds


def validate_key_columns(key_columns: list[np.ndarray]) -> int:
    """Validate shape constraints and return the row count."""
    if not key_columns:
        raise ValueError("filter requires at least one key column")
    length = len(key_columns[0])
    for column in key_columns[1:]:
        if len(column) != length:
            raise ValueError("key columns must have equal lengths")
    return length
