"""Abstract interface shared by all bitvector filter implementations."""

from __future__ import annotations

import abc

import numpy as np

from repro.testing.faults import fault_point


class BitvectorFilter(abc.ABC):
    """A probabilistic (or exact) set membership filter over key tuples.

    Contract:

    * built once from the build side's key columns,
    * ``contains`` never returns ``False`` for a key that was inserted
      (no false negatives),
    * implementations may return ``True`` for keys that were *not*
      inserted (false positives), except :class:`ExactFilter`.

    Partitioned builds
    ------------------
    Every registry filter kind additionally supports a
    *partition-build-then-merge* protocol so the executor can construct
    one filter from per-morsel build-side partitions on the worker pool
    without breaking the single-build-then-shared probe contract:

    1. :meth:`build_geometry` fixes the shared shape of the filter from
       the *total* key count (Bloom variants: bit-array size and hash
       count — every partial must agree or the merged words would be
       meaningless; the exact filter needs none);
    2. :meth:`build_partial` constructs an intermediate filter over one
       partition of the build rows under that geometry (safe to run
       concurrently, one call per partition);
    3. :meth:`merge` folds the partials — in partition order, on one
       thread — into the final published filter.

    The merged filter must answer :meth:`contains` identically to a
    serial :meth:`build` over the concatenated partitions (bit-identical
    word arrays for the hashed kinds), because downstream zone-map
    pruning, cost accounting, and result byte-equivalence all assume the
    partitioning is unobservable.  :meth:`build_partitioned` is the
    serial reference implementation of the protocol; the parallel
    executor replays the same three steps with step 2 fanned out.
    """

    #: Whether this implementation provides the partitioned-build hooks
    #: (:meth:`build_geometry` / :meth:`build_partial` / :meth:`merge`).
    #: The executor falls back to a serial :meth:`build` when False.
    supports_partitioned_build = False

    @classmethod
    @abc.abstractmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "BitvectorFilter":
        """Construct a filter containing every key tuple in the columns.

        ``key_columns`` is a non-empty list of equal-length arrays; row
        ``i`` across the arrays forms one key tuple.
        """

    @classmethod
    def build_geometry(cls, num_keys: int, **options) -> dict:
        """Shared shape parameters for partition builds over ``num_keys``
        total keys.  The default empty geometry suits filters whose
        partials need no coordination (the exact filter)."""
        return {}

    @classmethod
    def build_partial(
        cls, key_columns: list[np.ndarray], geometry: dict, **options
    ) -> "BitvectorFilter":
        """Build the partial filter of one partition under ``geometry``."""
        raise NotImplementedError(
            f"{cls.__name__} does not support partitioned builds"
        )

    @classmethod
    def merge(
        cls, partials: list["BitvectorFilter"], num_keys: int, **options
    ) -> "BitvectorFilter":
        """Fold partition partials (in partition order) into the final
        filter over ``num_keys`` total build keys."""
        raise NotImplementedError(
            f"{cls.__name__} does not support partitioned builds"
        )

    @classmethod
    def build_partitioned(
        cls, partitions: list[list[np.ndarray]], context=None, **options
    ) -> "BitvectorFilter":
        """Serial reference of the partition-build-then-merge protocol.

        ``partitions`` is a non-empty list of key-column lists; the
        concatenation of the partitions (in order) is the build side.
        Equivalent to ``cls.build`` over that concatenation — tests
        assert the equivalence, the parallel executor relies on it.

        ``context`` (an :class:`~repro.engine.context.ExecutionContext`)
        arms a deadline/cancel check before each partition, making long
        builds abortable at the same granularity the parallel fan-out
        gets from its per-task checks; each partition is also a
        ``"filter.build_partition"`` fault site, mirroring the
        executor's fan-out tasks.
        """
        if not partitions:
            raise ValueError("build_partitioned requires at least one partition")
        num_keys = sum(validate_key_columns(part) for part in partitions)
        geometry = cls.build_geometry(num_keys, **options)
        partials = []
        for part in partitions:
            if context is not None:
                context.check()
            fault_point("filter.build_partition")
            partials.append(cls.build_partial(part, geometry, **options))
        return cls.merge(partials, num_keys, **options)

    @abc.abstractmethod
    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Boolean mask: which probe rows may match an inserted key."""

    @property
    @abc.abstractmethod
    def size_bits(self) -> int:
        """Memory footprint of the filter payload in bits."""

    @property
    @abc.abstractmethod
    def num_keys(self) -> int:
        """Number of key tuples inserted at build time."""

    @property
    def resident_bytes(self) -> int:
        """Bytes actually resident for this filter, auxiliary structures
        included.  The default derives from :attr:`size_bits`, which
        suits the hashed kinds (their payload *is* the word array);
        implementations with side structures (membership tables, raw
        fallback columns) must override so cache-footprint accounting
        never silently under-reports a mode."""
        return (self.size_bits + 7) // 8

    def describe(self) -> dict:
        """Geometry of the resident representation for explain output.

        Every mode a filter can be in — including fallback modes —
        must surface here with at least ``mode`` and ``resident_bytes``.
        """
        return {
            "mode": type(self).__name__,
            "resident_bytes": self.resident_bytes,
        }

    @property
    def may_have_false_positives(self) -> bool:
        """Whether this implementation can report spurious matches."""
        return True

    def false_positive_rate(self) -> float:
        """Estimated probability a non-member passes the filter."""
        return 0.0

    def key_bounds(self) -> list[tuple | None] | None:
        """Per-key-column ``(min, max)`` of the inserted keys, or None.

        The zone-map pruning contract (see
        :mod:`repro.storage.zonemaps`): a probe morsel whose value
        range is disjoint from a column's bounds holds no tuple that
        was inserted, so the whole probe can be skipped — sound even
        for approximate filters, because bounds describe the *inserted*
        keys exactly.  A column entry is ``None`` when bounds are
        unavailable; float key columns containing NaN report ``None``
        (the engine's join fallback matches NaN to NaN, so interval
        reasoning would be unsound there).  Implementations without any
        bounds return ``None`` outright.
        """
        return None


def compute_key_bounds(key_columns: list[np.ndarray]) -> list[tuple | None]:
    """Per-column ``(min, max)`` of build keys, honoring the
    :meth:`BitvectorFilter.key_bounds` contract (NaN => ``None``)."""
    bounds: list[tuple | None] = []
    for column in key_columns:
        column = np.asarray(column)
        if len(column) == 0:
            bounds.append(None)
            continue
        kind = column.dtype.kind
        if kind == "f":
            if np.isnan(column).any():
                bounds.append(None)
            else:
                bounds.append((float(column.min()), float(column.max())))
        elif kind in "iub":
            bounds.append((int(column.min()), int(column.max())))
        elif kind in "OUS":
            try:
                bounds.append((column.min(), column.max()))
            except TypeError:  # mixed-type object column: no total order
                bounds.append(None)
        else:
            bounds.append(None)
    return bounds


def merge_key_bounds(
    partial_bounds: list[list[tuple | None] | None],
) -> list[tuple | None] | None:
    """Combine per-partition :func:`compute_key_bounds` results.

    Matches what a single pass over the concatenated partitions would
    report: a column whose bounds are unavailable in *any* non-empty
    partition (NaN keys, unorderable values) stays unavailable — and so
    does one whose per-partition extrema cannot be compared across
    partitions (mixed types split across morsels raise the same
    ``TypeError`` a whole-column ``min`` would).
    """
    if any(bounds is None for bounds in partial_bounds):
        return None
    num_columns = max((len(bounds) for bounds in partial_bounds), default=0)
    merged: list[tuple | None] = []
    for index in range(num_columns):
        entries = [bounds[index] for bounds in partial_bounds]
        if any(entry is None for entry in entries):
            merged.append(None)
            continue
        try:
            merged.append(
                (
                    min(entry[0] for entry in entries),
                    max(entry[1] for entry in entries),
                )
            )
        except TypeError:  # cross-partition mixed types: no total order
            merged.append(None)
    return merged


def validate_key_columns(key_columns: list[np.ndarray]) -> int:
    """Validate shape constraints and return the row count."""
    if not key_columns:
        raise ValueError("filter requires at least one key column")
    length = len(key_columns[0])
    for column in key_columns[1:]:
        if len(column) != length:
            raise ValueError("key columns must have equal lengths")
    return length
