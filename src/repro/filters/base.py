"""Abstract interface shared by all bitvector filter implementations."""

from __future__ import annotations

import abc

import numpy as np


class BitvectorFilter(abc.ABC):
    """A probabilistic (or exact) set membership filter over key tuples.

    Contract:

    * built once from the build side's key columns,
    * ``contains`` never returns ``False`` for a key that was inserted
      (no false negatives),
    * implementations may return ``True`` for keys that were *not*
      inserted (false positives), except :class:`ExactFilter`.
    """

    @classmethod
    @abc.abstractmethod
    def build(cls, key_columns: list[np.ndarray], **options) -> "BitvectorFilter":
        """Construct a filter containing every key tuple in the columns.

        ``key_columns`` is a non-empty list of equal-length arrays; row
        ``i`` across the arrays forms one key tuple.
        """

    @abc.abstractmethod
    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        """Boolean mask: which probe rows may match an inserted key."""

    @property
    @abc.abstractmethod
    def size_bits(self) -> int:
        """Memory footprint of the filter payload in bits."""

    @property
    @abc.abstractmethod
    def num_keys(self) -> int:
        """Number of key tuples inserted at build time."""

    @property
    def may_have_false_positives(self) -> bool:
        """Whether this implementation can report spurious matches."""
        return True

    def false_positive_rate(self) -> float:
        """Estimated probability a non-member passes the filter."""
        return 0.0


def validate_key_columns(key_columns: list[np.ndarray]) -> int:
    """Validate shape constraints and return the row count."""
    if not key_columns:
        raise ValueError("filter requires at least one key column")
    length = len(key_columns[0])
    for column in key_columns[1:]:
        if len(column) != length:
            raise ValueError("key columns must have equal lengths")
    return length
