"""Register-blocked Bloom filter.

Each key hashes to one 64-bit block and sets ``k`` bits inside it, so a
probe touches a single cache line (Putze et al., and the layout modern
vectorized engines use).  Slightly worse FP rate than a classic Bloom
filter at equal space, much better memory locality — included so the
ablation benches can compare filter families, mirroring the paper's
related-work discussion of filter variants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.filters.base import (
    BitvectorFilter,
    compute_key_bounds,
    merge_key_bounds,
    validate_key_columns,
)
from repro.util.hashing import hash_columns, hash_int64

_BLOCK_BITS = 64
_DEFAULT_BITS_PER_KEY = 12
_DEFAULT_BITS_PER_BLOCK_KEY = 4


class BlockedBloomFilter(BitvectorFilter):
    """Bloom filter where each key lives in one 64-bit block."""

    def __init__(self, num_blocks: int, bits_per_key: int, num_keys: int,
                 blocks: np.ndarray,
                 key_bounds: list[tuple | None] | None = None) -> None:
        self._num_blocks = num_blocks
        self._bits_per_key = bits_per_key
        self._num_keys = num_keys
        self._blocks = blocks
        self._key_bounds = key_bounds

    supports_partitioned_build = True

    @classmethod
    def build_geometry(
        cls,
        num_keys: int,
        bits_per_key: float = _DEFAULT_BITS_PER_KEY,
        **options,
    ) -> dict:
        """Block count for ``num_keys`` total keys — shared by the serial
        build and every partition partial so OR-merged blocks are
        bit-identical to one serial scatter."""
        total_bits = max(
            _BLOCK_BITS, int(math.ceil(bits_per_key * max(1, num_keys)))
        )
        return {"num_blocks": max(1, total_bits // _BLOCK_BITS)}

    @classmethod
    def _scatter_blocks(
        cls, key_columns: list[np.ndarray], num_keys: int, num_blocks: int
    ) -> np.ndarray:
        blocks = np.zeros(num_blocks, dtype=np.uint64)
        if num_keys:
            block_index, masks = cls._positions(key_columns, num_blocks)
            np.bitwise_or.at(blocks, block_index, masks)
        return blocks

    @classmethod
    def build(
        cls,
        key_columns: list[np.ndarray],
        bits_per_key: float = _DEFAULT_BITS_PER_KEY,
        **options,
    ) -> "BlockedBloomFilter":
        num_keys = validate_key_columns(key_columns)
        geometry = cls.build_geometry(num_keys, bits_per_key=bits_per_key)
        blocks = cls._scatter_blocks(key_columns, num_keys, **geometry)
        return cls(geometry["num_blocks"], _DEFAULT_BITS_PER_BLOCK_KEY,
                   num_keys, blocks,
                   key_bounds=compute_key_bounds(key_columns))

    @classmethod
    def build_partial(
        cls, key_columns: list[np.ndarray], geometry: dict, **options
    ) -> "BlockedBloomFilter":
        num_keys = validate_key_columns(key_columns)
        blocks = cls._scatter_blocks(key_columns, num_keys, **geometry)
        return cls(geometry["num_blocks"], _DEFAULT_BITS_PER_BLOCK_KEY,
                   num_keys, blocks,
                   key_bounds=compute_key_bounds(key_columns))

    @classmethod
    def merge(
        cls, partials: list["BlockedBloomFilter"], num_keys: int, **options
    ) -> "BlockedBloomFilter":
        """OR-merge partial block arrays built with identical geometry."""
        if not partials:
            raise ValueError("merge requires at least one partial")
        first = partials[0]
        blocks = first._blocks.copy()
        for partial in partials[1:]:
            if partial._num_blocks != first._num_blocks:
                raise ValueError("partials disagree on filter geometry")
            blocks |= partial._blocks
        return cls(
            first._num_blocks, first._bits_per_key, int(num_keys), blocks,
            key_bounds=merge_key_bounds([p._key_bounds for p in partials]),
        )

    def contains(self, key_columns: list[np.ndarray]) -> np.ndarray:
        num_rows = validate_key_columns(key_columns)
        if self._num_keys == 0:
            return np.zeros(num_rows, dtype=bool)
        block_index, masks = self._positions(key_columns, self._num_blocks)
        stored = self._blocks[block_index]
        return (stored & masks) == masks

    @staticmethod
    def _positions(
        key_columns: list[np.ndarray], num_blocks: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block index and in-block bit mask for each key tuple."""
        h = hash_columns(key_columns)
        block_index = h % np.uint64(num_blocks)  # uint64 indexes directly
        with np.errstate(over="ignore"):
            mix = hash_int64(h.view(np.int64))
        masks = np.zeros(len(h), dtype=np.uint64)
        for i in range(_DEFAULT_BITS_PER_BLOCK_KEY):
            shift = np.uint64(i * 6)
            bit = (mix >> shift) & np.uint64(_BLOCK_BITS - 1)
            masks |= np.uint64(1) << bit
        return block_index, masks

    @property
    def size_bits(self) -> int:
        return self._num_blocks * _BLOCK_BITS

    @property
    def num_keys(self) -> int:
        return self._num_keys

    def key_bounds(self) -> list[tuple | None] | None:
        return self._key_bounds

    def false_positive_rate(self) -> float:
        if self._num_blocks == 0:
            return 0.0
        fill = float(
            np.unpackbits(self._blocks.view(np.uint8)).sum()
        ) / (self._num_blocks * _BLOCK_BITS)
        return fill ** self._bits_per_key

    def __repr__(self) -> str:
        return (
            f"BlockedBloomFilter(keys={self._num_keys}, "
            f"blocks={self._num_blocks})"
        )
