"""Filter kind registry so pipelines can select implementations by name."""

from __future__ import annotations

import numpy as np

from repro.filters.base import BitvectorFilter
from repro.filters.blocked import BlockedBloomFilter
from repro.filters.bloom import BloomFilter
from repro.filters.exact import ExactFilter

FILTER_KINDS: dict[str, type[BitvectorFilter]] = {
    "exact": ExactFilter,
    "bloom": BloomFilter,
    "blocked_bloom": BlockedBloomFilter,
}


def create_filter(
    kind: str, key_columns: list[np.ndarray], **options
) -> BitvectorFilter:
    """Build a bitvector filter of the named kind.

    >>> import numpy as np
    >>> f = create_filter("exact", [np.array([1, 2, 3])])
    >>> f.contains([np.array([2, 9])]).tolist()
    [True, False]
    """
    try:
        filter_class = FILTER_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown filter kind {kind!r}; expected one of {sorted(FILTER_KINDS)}"
        ) from None
    return filter_class.build(key_columns, **options)
