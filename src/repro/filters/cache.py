"""Cross-query bitvector filter cache.

Building a bitvector filter costs one pass over the build side — the
overhead the paper's Section 6.3 threshold exists to police.  In a
workload, many queries build the *same* filter: a dimension table,
filtered by the same local predicate, keyed on the same join columns.
This cache amortizes that construction cost across the workload.

A filter is reusable iff its build side is a bare table scan, so the
cache key is the triple the extended paper frames as the amortizable
unit::

    (build table, build key columns, local predicate structure)

plus the filter implementation (kind + options), since a Bloom filter
and an exact filter built from the same rows are different artifacts.
Predicate structure is encoded alias-free
(:func:`repro.expr.expressions.structural_key`), so two queries that
alias ``customer`` as ``c`` and ``cust`` share one filter.

The executor (:class:`repro.engine.executor.Executor`) consults the
cache only when the build side is a :class:`~repro.plan.nodes.ScanNode`
with no bitvectors applied to it — any upstream filtering would make
the built filter depend on the rest of the plan.  Invalidation on
schema change is owned by the caller (the service layer clears the
cache when :attr:`repro.storage.database.Database.schema_version`
moves); the underlying :class:`~repro.util.lru.LruCache` generation
guard keeps a build that raced a ``clear()`` from re-publishing a
stale filter.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.filters.base import BitvectorFilter
from repro.testing.faults import fault_point
from repro.util.lru import LruCache


class _PendingBuild:
    """One in-flight single-flight build: its barrier and its outcome.

    ``error`` is written (if at all) strictly before ``event.set()``,
    so any waiter released by the event sees either a published cache
    entry or the failure that prevented one — never a limbo state.
    """

    __slots__ = ("event", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: BaseException | None = None


def filter_cache_key(
    table_name: str,
    key_columns: tuple[str, ...],
    predicate_key: object,
    filter_kind: str,
    filter_options: dict | None = None,
) -> tuple:
    """Canonical, hashable cache key for one buildable filter."""
    options = tuple(sorted((filter_options or {}).items()))
    return (table_name, key_columns, predicate_key, filter_kind, options)


class BitvectorFilterCache(LruCache):
    """Bounded LRU cache of built bitvector filters.

    Thread-safe, with *single-flight* construction (the same discipline
    as :meth:`repro.storage.database.Database.dictionary` and zone-map
    builds): the builder callback runs outside every lock, but
    concurrent requesters of one key wait on the in-flight build
    instead of duplicating it — a herd of ``run_many`` workers hitting
    one cold dimension filter produces exactly one construction, and
    :attr:`builds_deduped` counts the builds the others were spared.

    Failure handoff: a builder that raises stores the exception on the
    pending entry *before* waking the herd, so every concurrent waiter
    re-raises that same failure instead of serially re-running a build
    the workload just watched die (or worse, dangling forever on a dead
    event).  Nothing is published on failure — no poisoned entry — and
    because the pending slot is popped first, any caller arriving
    *after* the wake becomes a fresh builder, so the next query simply
    rebuilds.  A waiter whose builder succeeded but whose publish was
    dropped by a racing ``clear()`` still loops and rebuilds from fresh
    state, so stale builds are never served either.
    """

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(capacity)
        self._cost_lock = threading.Lock()
        self._build_seconds: dict[tuple, float] = {}
        self._build_seconds_saved = 0.0
        self._pending_lock = threading.Lock()
        self._pending: dict[tuple, _PendingBuild] = {}
        self._builds_deduped = 0

    def get_or_build(
        self, key: tuple, builder: Callable[[], BitvectorFilter],
        tracer=None,
    ) -> tuple[BitvectorFilter, bool]:
        """Return ``(filter, was_cached)``, building and caching on miss.

        ``was_cached`` is True both for plain cache hits and for waits
        resolved by another thread's in-flight build — either way this
        caller paid no construction.

        ``tracer`` (an optional :class:`repro.obs.Tracer`) records a
        ``filter.cache.wait`` span around each single-flight wait, so
        time spent riding another query's in-flight build is visible in
        traces rather than silently folded into execute latency.
        """
        waited = False
        while True:
            cached = self.get(key)
            if cached is not None:
                with self._cost_lock:
                    self._build_seconds_saved += self._build_seconds.get(key, 0.0)
                    if waited:
                        self._builds_deduped += 1
                return cached, True
            with self._pending_lock:
                pending = self._pending.get(key)
                if pending is None:
                    pending = _PendingBuild()
                    self._pending[key] = pending
                    is_builder = True
                else:
                    is_builder = False
            if not is_builder:
                if tracer is None:
                    pending.event.wait()
                else:
                    with tracer.span("filter.cache.wait"):
                        pending.event.wait()
                if pending.error is not None:
                    # The build this caller was riding on failed; every
                    # rider shares its fate (one failure, not N retries
                    # of a doomed build).  Callers arriving after the
                    # wake find no pending entry and build fresh.
                    raise pending.error
                waited = True
                continue
            # Registered as builder — but a previous builder may have
            # published between our cache miss and the registration
            # (its put happens before its pending entry is popped, so
            # an absent entry proves any prior build is already
            # visible).  Counter-free membership check; the loop's
            # get() then serves (and accounts) the hit.
            if key in self:
                with self._pending_lock:
                    self._pending.pop(key, None)
                pending.event.set()
                continue
            generation = self.generation
            started = time.perf_counter()
            try:
                built = builder()
                elapsed = time.perf_counter() - started
                # Publication is a registered fault site: an injected
                # failure here must travel the failed-build path —
                # nothing published, waiters handed the error.
                fault_point("cache.publish")
            except BaseException as exc:
                # Store the failure, then wake the herd (order matters:
                # the event's release barrier makes the error visible).
                pending.error = exc
                with self._pending_lock:
                    self._pending.pop(key, None)
                pending.event.set()
                raise
            with self._cost_lock:
                self._build_seconds[key] = elapsed
                while len(self._build_seconds) > 4 * self.capacity:
                    self._build_seconds.pop(next(iter(self._build_seconds)))
            # Publish before waking waiters, so a woken thread's
            # re-check finds the value (or, if a clear() dropped the
            # put, rebuilds from fresh state itself).
            self.put(key, built, generation=generation)
            with self._pending_lock:
                self._pending.pop(key, None)
            pending.event.set()
            return built, False

    def clear(self) -> None:
        super().clear()
        with self._cost_lock:
            self._build_seconds.clear()

    @property
    def build_seconds_saved(self) -> float:
        """Construction time amortized away by cache hits so far."""
        with self._cost_lock:
            return self._build_seconds_saved

    @property
    def builds_deduped(self) -> int:
        """Duplicate constructions avoided by single-flight waits."""
        with self._cost_lock:
            return self._builds_deduped

    def size_bits(self) -> int:
        """Total memory footprint of all cached filter payloads."""
        return sum(entry.size_bits for entry in self.values())

    def resident_bytes(self) -> int:
        """Total bytes actually resident across cached filters —
        payloads plus auxiliary structures (membership bitvectors,
        dictionaries, fallback raw columns).  This is the working-set
        number the succinct representations exist to shrink."""
        return sum(entry.resident_bytes for entry in self.values())

    def mode_summary(self) -> dict[str, int]:
        """Cached-filter count per representation mode, for explain."""
        summary: dict[str, int] = {}
        for entry in self.values():
            mode = entry.describe().get("mode", type(entry).__name__)
            summary[mode] = summary.get(mode, 0) + 1
        return summary
