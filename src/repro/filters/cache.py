"""Cross-query bitvector filter cache.

Building a bitvector filter costs one pass over the build side — the
overhead the paper's Section 6.3 threshold exists to police.  In a
workload, many queries build the *same* filter: a dimension table,
filtered by the same local predicate, keyed on the same join columns.
This cache amortizes that construction cost across the workload.

A filter is reusable iff its build side is a bare table scan, so the
cache key is the triple the extended paper frames as the amortizable
unit::

    (build table, build key columns, local predicate structure)

plus the filter implementation (kind + options), since a Bloom filter
and an exact filter built from the same rows are different artifacts.
Predicate structure is encoded alias-free
(:func:`repro.expr.expressions.structural_key`), so two queries that
alias ``customer`` as ``c`` and ``cust`` share one filter.

The executor (:class:`repro.engine.executor.Executor`) consults the
cache only when the build side is a :class:`~repro.plan.nodes.ScanNode`
with no bitvectors applied to it — any upstream filtering would make
the built filter depend on the rest of the plan.  Invalidation on
schema change is owned by the caller (the service layer clears the
cache when :attr:`repro.storage.database.Database.schema_version`
moves); the underlying :class:`~repro.util.lru.LruCache` generation
guard keeps a build that raced a ``clear()`` from re-publishing a
stale filter.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.filters.base import BitvectorFilter
from repro.util.lru import LruCache


def filter_cache_key(
    table_name: str,
    key_columns: tuple[str, ...],
    predicate_key: object,
    filter_kind: str,
    filter_options: dict | None = None,
) -> tuple:
    """Canonical, hashable cache key for one buildable filter."""
    options = tuple(sorted((filter_options or {}).items()))
    return (table_name, key_columns, predicate_key, filter_kind, options)


class BitvectorFilterCache(LruCache):
    """Bounded LRU cache of built bitvector filters.

    Thread-safe: lookups and insertions are serialized, but the builder
    callback runs outside the lock, so two racing threads may build the
    same filter once each — the second build wins the slot and the
    duplicate work is bounded by one construction.
    """

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(capacity)
        self._cost_lock = threading.Lock()
        self._build_seconds: dict[tuple, float] = {}
        self._build_seconds_saved = 0.0

    def get_or_build(
        self, key: tuple, builder: Callable[[], BitvectorFilter]
    ) -> tuple[BitvectorFilter, bool]:
        """Return ``(filter, was_cached)``, building and caching on miss."""
        cached = self.get(key)
        if cached is not None:
            with self._cost_lock:
                self._build_seconds_saved += self._build_seconds.get(key, 0.0)
            return cached, True
        generation = self.generation
        started = time.perf_counter()
        built = builder()
        elapsed = time.perf_counter() - started
        with self._cost_lock:
            self._build_seconds[key] = elapsed
            while len(self._build_seconds) > 4 * self.capacity:
                self._build_seconds.pop(next(iter(self._build_seconds)))
        self.put(key, built, generation=generation)
        return built, False

    def clear(self) -> None:
        super().clear()
        with self._cost_lock:
            self._build_seconds.clear()

    @property
    def build_seconds_saved(self) -> float:
        """Construction time amortized away by cache hits so far."""
        with self._cost_lock:
            return self._build_seconds_saved

    def size_bits(self) -> int:
        """Total memory footprint of all cached filter payloads."""
        return sum(entry.size_bits for entry in self.values())
