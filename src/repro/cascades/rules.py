"""Transformation rules.

Rules rewrite logical expressions into equivalent ones.  Join
commutativity plus (left) associativity — with cross products rejected —
explore the full bushy space for connected graphs when run to fixpoint,
the classic Cascades result.
"""

from __future__ import annotations

import abc

from repro.cascades.memo import LogicalExpression, LogicalJoin, Memo
from repro.query.joingraph import JoinGraph


def _connected(graph: JoinGraph, left: frozenset[str], right: frozenset[str]) -> bool:
    for alias in left:
        if graph.neighbors(alias) & right:
            return True
    return False


class Rule(abc.ABC):
    """A transformation rule over logical expressions."""

    name = "rule"

    @abc.abstractmethod
    def apply(
        self, expression: LogicalExpression, memo: Memo, graph: JoinGraph
    ) -> list[LogicalExpression]:
        """Return new expressions equivalent to ``expression``.

        Rules may also need to create *child* groups (associativity
        produces joins over new relation subsets); they insert those
        into the memo directly.
        """


class JoinCommutativity(Rule):
    """Join(L, R) -> Join(R, L)."""

    name = "join_commute"

    def apply(self, expression, memo, graph):
        if not isinstance(expression, LogicalJoin):
            return []
        return [LogicalJoin(expression.right, expression.left)]


class JoinAssociativity(Rule):
    """Join(Join(X, Y), R) -> Join(X, Join(Y, R)) (no cross products).

    The inner ``Join(Y, R)`` is inserted into its own group so it can be
    explored further.
    """

    name = "join_assoc"

    def apply(self, expression, memo, graph):
        if not isinstance(expression, LogicalJoin):
            return []
        results: list[LogicalExpression] = []
        left_group = memo.group(expression.left)
        for child in list(left_group.expressions):
            if not isinstance(child, LogicalJoin):
                continue
            x, y = child.left, child.right
            r = expression.right
            if not _connected(graph, y, r):
                continue
            inner = LogicalJoin(y, r)
            if not _connected(graph, x, y | r):
                continue
            memo.insert_expression(inner)
            results.append(LogicalJoin(x, y | r))
        return results


DEFAULT_RULES: tuple[Rule, ...] = (JoinCommutativity(), JoinAssociativity())
