"""The Cascades-lite search engine and the BQO integration modes.

Exploration seeds the memo with one cross-product-free left-deep tree
and applies the rule set to fixpoint; for a connected graph this
materializes every connected subset as a group with all its valid
partitions — the classic Volcano/Cascades search space.

Extraction then depends on the integration mode (paper Section 6.4):

``blind``
    Bitvector-unaware recursive best-cost over the memo (substructure
    optimality holds, so it is plain DP).  This is the baseline host
    optimizer.
``full``
    Bitvector-aware costing.  Because filter placement breaks
    substructure optimality, complete plans must be costed as wholes;
    extraction enumerates plans from the memo (capped) and scores each
    with push-down + bitvector-aware ``Cout``.  The cap is the honest
    price of full integration — exactly the blow-up the paper's
    analysis avoids.
``alternative``
    The blind winner and the BQO rule's plan are both scored
    bitvector-aware; the cheaper is returned.
``shallow``
    The BQO rule fires on the root group and its plan is pinned (join
    reordering disabled on it) — the paper's deployed configuration.
"""

from __future__ import annotations

from repro.cascades.memo import LogicalGet, Memo
from repro.cascades.rules import DEFAULT_RULES, Rule
from repro.cost.cout import EstimatedCardModel, cout
from repro.errors import OptimizerError
from repro.optimizer.blindcard import BlindCardModel
from repro.optimizer.multifact import optimize_join_graph
from repro.plan.builder import join_nodes, scan_for
from repro.plan.clone import clone_plan
from repro.plan.nodes import PlanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import QuerySpec
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database

INTEGRATION_MODES = ("blind", "full", "alternative", "shallow")


class CascadesOptimizer:
    """Memo-based optimizer with pluggable BQO integration."""

    def __init__(
        self,
        database: Database,
        rules: tuple[Rule, ...] = DEFAULT_RULES,
        max_extracted_plans: int = 4000,
    ) -> None:
        self._database = database
        self._rules = rules
        self._max_extracted_plans = max_extracted_plans

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize(self, spec: QuerySpec, mode: str = "shallow") -> PlanNode:
        """Return a physical plan (no push-down applied yet)."""
        if mode not in INTEGRATION_MODES:
            raise OptimizerError(
                f"unknown integration mode {mode!r}; "
                f"expected one of {INTEGRATION_MODES}"
            )
        spec.validate_against(self._database)
        graph = JoinGraph(spec, self._database.catalog)
        estimator = CardinalityEstimator(self._database, spec.alias_tables)

        if mode == "shallow":
            # The BQO rule fires on the snowflake (sub)graph and its
            # result is pinned: no further reordering.
            return optimize_join_graph(graph, estimator)

        memo = Memo()
        root = memo.seed_left_deep(_connected_order(graph))
        self._explore(memo, graph)

        if mode == "blind":
            plan, _ = self._best_blind(memo, root, graph, estimator)
            return plan
        if mode == "alternative":
            blind_plan, _ = self._best_blind(memo, root, graph, estimator)
            bqo_plan = optimize_join_graph(graph, estimator)
            scored = [
                (self._aware_cost(plan, estimator), index, plan)
                for index, plan in enumerate((blind_plan, bqo_plan))
            ]
            return min(scored)[2]
        # mode == "full"
        return self._best_full(memo, root, graph, estimator)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------

    def _explore(self, memo: Memo, graph: JoinGraph) -> None:
        changed = True
        while changed:
            changed = False
            for group in memo.groups:
                for expression in list(group.expressions):
                    for rule in self._rules:
                        for produced in rule.apply(expression, memo, graph):
                            if memo.insert_expression(produced):
                                changed = True

    # ------------------------------------------------------------------
    # Blind (DP) extraction
    # ------------------------------------------------------------------

    def _best_blind(
        self,
        memo: Memo,
        root: frozenset[str],
        graph: JoinGraph,
        estimator: CardinalityEstimator,
    ) -> tuple[PlanNode, float]:
        model = BlindCardModel(graph, estimator)
        cache: dict[frozenset[str], tuple[PlanNode, float]] = {}

        def best(relations: frozenset[str]) -> tuple[PlanNode, float]:
            cached = cache.get(relations)
            if cached is not None:
                return cached
            group = memo.group(relations)
            best_entry: tuple[PlanNode, float] | None = None
            for expression in group.expressions:
                if isinstance(expression, LogicalGet):
                    plan: PlanNode = scan_for(graph.spec, expression.alias)
                    cost = model.base_rows(expression.alias)
                else:
                    left_plan, left_cost = best(expression.left)
                    right_plan, right_cost = best(expression.right)
                    rows = model.subset_rows(relations)
                    cost = left_cost + right_cost + rows
                    build, probe = left_plan, right_plan
                    if model.subset_rows(expression.left) > model.subset_rows(
                        expression.right
                    ):
                        build, probe = right_plan, left_plan
                    plan = join_nodes(graph, build=build, probe=probe)
                if best_entry is None or cost < best_entry[1]:
                    best_entry = (plan, cost)
            if best_entry is None:
                raise OptimizerError(
                    f"no expression for group {sorted(relations)}"
                )
            cache[relations] = best_entry
            return best_entry

        return best(root)

    # ------------------------------------------------------------------
    # Full bitvector-aware extraction
    # ------------------------------------------------------------------

    def _best_full(
        self,
        memo: Memo,
        root: frozenset[str],
        graph: JoinGraph,
        estimator: CardinalityEstimator,
    ) -> PlanNode:
        plans = self._enumerate_plans(memo, root, graph)
        best_plan: PlanNode | None = None
        best_cost = float("inf")
        for plan in plans:
            cost = self._aware_cost(plan, estimator)
            if cost < best_cost:
                best_cost = cost
                best_plan = plan
        if best_plan is None:
            raise OptimizerError("no complete plan could be extracted")
        return best_plan

    def _enumerate_plans(
        self, memo: Memo, root: frozenset[str], graph: JoinGraph
    ) -> list[PlanNode]:
        budget = self._max_extracted_plans
        cache: dict[frozenset[str], list[PlanNode]] = {}

        def plans_of(relations: frozenset[str]) -> list[PlanNode]:
            cached = cache.get(relations)
            if cached is not None:
                return cached
            group = memo.group(relations)
            out: list[PlanNode] = []
            for expression in group.expressions:
                if isinstance(expression, LogicalGet):
                    out.append(scan_for(graph.spec, expression.alias))
                    continue
                for left in plans_of(expression.left):
                    for right in plans_of(expression.right):
                        if len(out) >= budget:
                            break
                        out.append(join_nodes(graph, build=left, probe=right))
                    if len(out) >= budget:
                        break
                if len(out) >= budget:
                    break
            cache[relations] = out
            return out

        return plans_of(root)

    # ------------------------------------------------------------------
    # Shared scoring
    # ------------------------------------------------------------------

    @staticmethod
    def _aware_cost(plan: PlanNode, estimator: CardinalityEstimator) -> float:
        copy, _ = clone_plan(plan)
        pushed = push_down_bitvectors(copy)
        return cout(pushed, EstimatedCardModel(estimator))


def _connected_order(graph: JoinGraph) -> list[str]:
    """A cross-product-free seeding order (BFS from the first alias)."""
    if not graph.aliases:
        raise OptimizerError("query has no relations")
    start = graph.aliases[0]
    order = [start]
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for alias in frontier:
            for neighbor in sorted(graph.neighbors(alias)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if len(order) != len(graph.aliases):
        raise OptimizerError("join graph is disconnected (cross product)")
    return order
