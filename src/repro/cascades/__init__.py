"""Cascades-lite: a memo-based transformation-rule optimizer.

The paper implements its algorithm *as a transformation rule* inside
SQL Server's Volcano/Cascades optimizer and describes three integration
options (Section 6.4).  This package provides a compact but real
Cascades substrate — memo, groups, logical expressions, transformation
rules — plus the BQO rule, and implements all three options:

* ``full`` — bitvector-aware costing of complete plans extracted from
  the explored memo.  Exact but exponential (this cost is precisely the
  paper's motivation for the linear candidate analysis); plan
  extraction is capped.
* ``alternative`` — the bitvector-blind best plan and the BQO rule's
  plan are both costed bitvector-aware; the cheaper wins.
* ``shallow`` — the BQO rule's subplan is pinned (join reordering
  disabled on it), matching the paper's deployed configuration.
* ``blind`` — no bitvector awareness at all (the pre-paper baseline;
  cross-checks :mod:`repro.optimizer.baseline`).
"""

from repro.cascades.memo import Memo, Group, LogicalGet, LogicalJoin
from repro.cascades.rules import (
    Rule,
    JoinCommutativity,
    JoinAssociativity,
    DEFAULT_RULES,
)
from repro.cascades.engine import CascadesOptimizer, INTEGRATION_MODES

__all__ = [
    "Memo",
    "Group",
    "LogicalGet",
    "LogicalJoin",
    "Rule",
    "JoinCommutativity",
    "JoinAssociativity",
    "DEFAULT_RULES",
    "CascadesOptimizer",
    "INTEGRATION_MODES",
]
