"""Memo structure: groups of logically equivalent expressions.

A *group* is identified by the set of relations it joins.  Each group
holds logical expressions — ``Get(alias)`` leaves or ``Join(left_group,
right_group)`` — deduplicated by their child groups.  Transformation
rules add new expressions; duplicates are ignored, which is what makes
exploration terminate.
"""

from __future__ import annotations

import dataclasses

from repro.errors import OptimizerError


@dataclasses.dataclass(frozen=True)
class LogicalGet:
    """Leaf: scan of a single relation instance."""

    alias: str

    @property
    def relations(self) -> frozenset[str]:
        return frozenset({self.alias})


@dataclasses.dataclass(frozen=True)
class LogicalJoin:
    """Inner join of two groups (identified by their relation sets)."""

    left: frozenset[str]
    right: frozenset[str]

    @property
    def relations(self) -> frozenset[str]:
        return self.left | self.right


LogicalExpression = LogicalGet | LogicalJoin


class Group:
    """All known logically equivalent expressions over one relation set."""

    def __init__(self, relations: frozenset[str]) -> None:
        self.relations = relations
        self.expressions: list[LogicalExpression] = []
        self._seen: set[object] = set()
        self.explored = False

    def add(self, expression: LogicalExpression) -> bool:
        """Add an expression; returns True if it was new."""
        if expression.relations != self.relations:
            raise OptimizerError(
                f"expression {expression} does not belong to group "
                f"{sorted(self.relations)}"
            )
        key = (
            expression.alias
            if isinstance(expression, LogicalGet)
            else (expression.left, expression.right)
        )
        if key in self._seen:
            return False
        self._seen.add(key)
        self.expressions.append(expression)
        return True


class Memo:
    """Group registry keyed by relation set."""

    def __init__(self) -> None:
        self._groups: dict[frozenset[str], Group] = {}

    def group(self, relations: frozenset[str]) -> Group:
        group = self._groups.get(relations)
        if group is None:
            group = Group(relations)
            self._groups[relations] = group
        return group

    def has_group(self, relations: frozenset[str]) -> bool:
        return relations in self._groups

    @property
    def groups(self) -> list[Group]:
        return list(self._groups.values())

    def num_expressions(self) -> int:
        return sum(len(group.expressions) for group in self._groups.values())

    def insert_expression(self, expression: LogicalExpression) -> bool:
        """Insert into the owning group (creating it if needed)."""
        return self.group(expression.relations).add(expression)

    def seed_left_deep(self, order: list[str]) -> frozenset[str]:
        """Seed the memo with a left-deep tree over ``order``.

        Returns the root group's relation set.
        """
        if not order:
            raise OptimizerError("cannot seed an empty memo")
        self.insert_expression(LogicalGet(order[0]))
        accumulated = frozenset({order[0]})
        for alias in order[1:]:
            self.insert_expression(LogicalGet(alias))
            expression = LogicalJoin(accumulated, frozenset({alias}))
            accumulated = accumulated | {alias}
            self.insert_expression(expression)
        return accumulated
